package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/access"
	"repro/internal/colstore"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/trace"
)

// diffCase is one row-vs-batch differential point: build constructs the
// same plan over fresh tables in a fresh env, and the two engines must
// produce identical rows in identical order.
type diffCase struct {
	name  string
	grant int64 // grant bytes (0 = unlimited)
	build func(te *testEnv) *Node
}

// registerCSI builds and registers a columnstore over the table.
func registerCSI(te *testEnv, id int, tab *storage.Table, cols []int) *access.CSI {
	csi := access.NewCSI(colstore.Build(id, tab, cols))
	csi.Ix.File.Region = te.env.M.ReserveRegion(csi.Ix.File.Bytes() + 1<<20)
	te.env.BP.Register(csi.Ix.File)
	return csi
}

func diffCases() []diffCase {
	joinNode := func(te *testEnv, jt JoinType, par bool) *Node {
		orders := te.ordersTable()
		cust := te.custTable()
		return &Node{
			Kind:      KHashJoin,
			Left:      scanNode(cust, []int{0, 1}, nil, 0, false),
			Right:     scanNode(orders, []int{0, 1, 2}, nil, 0, par),
			BuildKeys: []int{0}, ProbeKeys: []int{1}, JoinType: jt,
			Weight: orders.K, Parallel: par,
		}
	}
	mergeNode := func(te *testEnv, jt JoinType) *Node {
		orders := te.ordersTable()
		cust := te.custTable()
		return &Node{
			Kind:      KMergeJoin,
			Left:      scanNode(orders, []int{0, 1, 2}, nil, 0, true),
			Right:     scanNode(cust, []int{0, 1}, nil, 0, false),
			BuildKeys: []int{1}, ProbeKeys: []int{0}, JoinType: jt,
			Weight: orders.K, Parallel: true,
		}
	}
	nlNode := func(te *testEnv, jt JoinType) *Node {
		orders := te.ordersTable()
		cust := te.custTable()
		ix := access.NewBTIndex(100, "pk_customer", cust, []int{0}, true, true)
		ix.File.Region = te.env.M.ReserveRegion(ix.File.Bytes())
		te.env.BP.Register(ix.File)
		return &Node{
			Kind:  KNLIndexJoin,
			Left:  scanNode(orders, []int{0, 1, 2}, nil, 0, true),
			Index: ix, OuterKeys: []int{1}, InnerProj: []int{0, 1},
			JoinType: jt, Weight: orders.K, Parallel: true,
		}
	}
	allAggs := []AggSpec{
		{Kind: AggSum, Col: 1},
		{Kind: AggCount},
		{Kind: AggMin, Col: 1},
		{Kind: AggMax, Col: 1},
		{Kind: AggAvg, Col: 1},
	}

	cases := []diffCase{
		{name: "rowscan-proj", build: func(te *testEnv) *Node {
			return scanNode(te.ordersTable(), []int{2, 0}, nil, 0, true)
		}},
		{name: "rowscan-pred", build: func(te *testEnv) *Node {
			return scanNode(te.ordersTable(), []int{0, 2}, func(r Row) bool { return r[1] == 3 }, 1, true)
		}},
		{name: "rowscan-pred-none-match", build: func(te *testEnv) *Node {
			return scanNode(te.ordersTable(), []int{0}, func(r Row) bool { return r[1] == 99 }, 1, true)
		}},
		{name: "colscan-pred", build: func(te *testEnv) *Node {
			orders := te.ordersTable()
			csi := registerCSI(te, 200, orders, []int{0, 1, 2})
			return &Node{
				Kind: KColScan, CSI: csi, Proj: []int{0, 2},
				Pred: func(r Row) bool { return r[1] == 3 }, NPred: 1, PredCols: []int{1},
				Weight: orders.K, Parallel: true, Name: "orders_csi",
			}
		}},
		{name: "colscan-count-shape", build: func(te *testEnv) *Node {
			orders := te.ordersTable()
			csi := registerCSI(te, 201, orders, []int{0, 1, 2})
			return &Node{
				Kind: KHashAgg,
				Left: &Node{Kind: KColScan, CSI: csi, Proj: nil, Weight: orders.K, Parallel: true},
				Aggs: []AggSpec{{Kind: AggCount}}, Weight: orders.K,
			}
		}},
		{name: "colscan-delta", build: func(te *testEnv) *Node {
			orders := te.ordersTable()
			csi := registerCSI(te, 202, orders, []int{0, 1, 2})
			for i := int64(0); i < 7; i++ {
				csi.Ix.AppendDelta([]int64{1000 + i, i % 20, 50})
			}
			return &Node{
				Kind: KColScan, CSI: csi, Proj: []int{0, 1},
				Pred: func(r Row) bool { return r[1]%2 == 1 }, NPred: 1, PredCols: []int{1},
				Weight: orders.K, Parallel: true,
			}
		}},
		{name: "filter", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KFilter,
				Left: scanNode(te.ordersTable(), []int{0, 1, 2}, nil, 0, true),
				Pred: func(r Row) bool { return r[2] > 50 }, NPred: 1, Weight: te.env.Cost.TupleBytes,
			}
		}},
		{name: "filter-nil-pred", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KFilter,
				Left: scanNode(te.ordersTable(), []int{0, 1}, nil, 0, true),
				Weight: 5,
			}
		}},
		{name: "filter-chain", build: func(te *testEnv) *Node {
			inner := &Node{
				Kind: KFilter,
				Left: scanNode(te.ordersTable(), []int{0, 1, 2}, nil, 0, true),
				Pred: func(r Row) bool { return r[2] > 20 }, NPred: 1, Weight: 5,
			}
			return &Node{
				Kind: KFilter, Left: inner,
				Pred: func(r Row) bool { return r[1] < 10 }, NPred: 1, Weight: 5,
			}
		}},
		{name: "project", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KProject,
				Left: scanNode(te.ordersTable(), []int{0, 2}, nil, 0, true),
				Exprs: []func(Row) int64{
					func(r Row) int64 { return r[0] + r[1] },
					func(r Row) int64 { return r[1] * 3 },
				},
				Weight: 5,
			}
		}},
		{name: "streamagg", build: func(te *testEnv) *Node {
			return &Node{
				Kind:   KStreamAgg,
				Left:   scanNode(te.ordersTable(), []int{1, 2}, nil, 0, true),
				Groups: []int{0}, Aggs: allAggs, Weight: 5, Parallel: true,
			}
		}},
		{name: "sort-multikey", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KSort,
				Left: scanNode(te.ordersTable(), []int{1, 2, 0}, nil, 0, true),
				Keys: []SortKey{{Col: 0}, {Col: 1, Desc: true}},
				Weight: 5, Parallel: true,
			}
		}},
		{name: "top-limit", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KTop,
				Left: scanNode(te.ordersTable(), []int{2, 0}, nil, 0, true),
				Keys: []SortKey{{Col: 0, Desc: true}}, Limit: 13,
				Weight: 5,
			}
		}},
		{name: "top-limit-over-input", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KTop,
				Left: scanNode(te.ordersTable(), []int{2, 0}, nil, 0, true),
				Keys: []SortKey{{Col: 0}}, Limit: 1000,
				Weight: 5,
			}
		}},
		{name: "top-no-keys", build: func(te *testEnv) *Node {
			return &Node{
				Kind:  KTop,
				Left:  scanNode(te.ordersTable(), []int{0, 1}, nil, 0, true),
				Limit: 17, Weight: 5,
			}
		}},
		{name: "agg-empty-input-scalar", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KHashAgg,
				Left: scanNode(te.ordersTable(), []int{1, 2}, func(r Row) bool { return false }, 1, true),
				Aggs: allAggs, Weight: 5,
			}
		}},
		{name: "streamagg-empty-input-scalar", build: func(te *testEnv) *Node {
			return &Node{
				Kind: KStreamAgg,
				Left: scanNode(te.ordersTable(), []int{1, 2}, func(r Row) bool { return false }, 1, true),
				Aggs: allAggs, Weight: 5,
			}
		}},
		{name: "agg-wide-groups", build: func(te *testEnv) *Node {
			// Five group columns exercise the wide (string-key) fallback.
			return &Node{
				Kind:   KHashAgg,
				Left:   scanNode(te.ordersTable(), []int{0, 1, 2}, nil, 0, true),
				Groups: []int{1, 2, 1, 2, 1}, Aggs: allAggs,
				Weight: 5, Parallel: true,
			}
		}},
		{name: "hashjoin-spill", grant: 64, build: func(te *testEnv) *Node {
			return joinNode(te, InnerJoin, false)
		}},
		{name: "sort-spill", grant: 64, build: func(te *testEnv) *Node {
			return &Node{
				Kind: KSort,
				Left: scanNode(te.ordersTable(), []int{1, 0}, nil, 0, true),
				Keys: []SortKey{{Col: 0}}, Weight: 5, Parallel: true,
			}
		}},
		{name: "hashagg-spill", grant: 64, build: func(te *testEnv) *Node {
			return &Node{
				Kind:   KHashAgg,
				Left:   scanNode(te.ordersTable(), []int{1, 2}, nil, 0, true),
				Groups: []int{0}, Aggs: allAggs, Weight: 5, Parallel: true,
			}
		}},
	}
	for _, jt := range []JoinType{InnerJoin, SemiJoin, AntiJoin} {
		jt := jt
		cases = append(cases,
			diffCase{name: fmt.Sprintf("hashjoin-%d", jt), build: func(te *testEnv) *Node {
				return joinNode(te, jt, true)
			}},
			diffCase{name: fmt.Sprintf("hashjoin-%d-empty-build", jt), build: func(te *testEnv) *Node {
				n := joinNode(te, jt, true)
				n.Left.Pred = func(r Row) bool { return false }
				n.Left.NPred = 1
				return n
			}},
			diffCase{name: fmt.Sprintf("hashjoin-%d-empty-probe", jt), build: func(te *testEnv) *Node {
				n := joinNode(te, jt, true)
				n.Right.Pred = func(r Row) bool { return false }
				n.Right.NPred = 1
				return n
			}},
			diffCase{name: fmt.Sprintf("mergejoin-%d", jt), build: func(te *testEnv) *Node {
				return mergeNode(te, jt)
			}},
			diffCase{name: fmt.Sprintf("nljoin-%d", jt), build: func(te *testEnv) *Node {
				return nlNode(te, jt)
			}},
		)
	}
	return cases
}

// TestVectorizedMatchesRowEngine is the row-vs-batch differential gate:
// every operator kind, join type, and aggregate kind (plus empty inputs,
// min/max sentinels, and spill paths) must produce identical rows in
// identical order at DOP 1 and DOP 4.
func TestVectorizedMatchesRowEngine(t *testing.T) {
	for _, c := range diffCases() {
		c := c
		for _, cores := range []int{1, 4} {
			cores := cores
			t.Run(fmt.Sprintf("%s/dop%d", c.name, cores), func(t *testing.T) {
				runCase := func(vec bool) ([]Row, QueryStats) {
					te := newTestEnv(cores)
					if c.grant != 0 {
						te.env.Grant = &Grant{Bytes: c.grant}
					}
					te.env.Vectorized = vec
					return te.run(c.build(te))
				}
				rowOut, rowSt := runCase(false)
				vecOut, vecSt := runCase(true)
				if len(rowOut) == 0 && len(vecOut) == 0 {
					// nil vs empty: both engines emitted no rows.
				} else if !reflect.DeepEqual(rowOut, vecOut) {
					t.Fatalf("row/vec mismatch:\nrow (%d): %v\nvec (%d): %v",
						len(rowOut), sampleRows(rowOut), len(vecOut), sampleRows(vecOut))
				}
				if rowSt.OutRows != vecSt.OutRows {
					t.Fatalf("OutRows: row %d vec %d", rowSt.OutRows, vecSt.OutRows)
				}
				if rowSt.Spills != vecSt.Spills || rowSt.SpillBytes != vecSt.SpillBytes {
					t.Fatalf("spills: row %+v vec %+v", rowSt, vecSt)
				}
				if c.grant != 0 && rowSt.Spills == 0 {
					t.Fatalf("spill case did not spill")
				}
				if len(vecOut) > 0 && vecSt.Batches == 0 {
					t.Fatalf("vectorized run reported no batches")
				}
			})
		}
	}
}

func sampleRows(rows []Row) []Row {
	if len(rows) > 12 {
		return rows[:12]
	}
	return rows
}

// TestKWayMergeEqualKeysDeterministic pins the merge tie-break rule:
// equal keys drain lower-index chunks first, reproducing the stable
// order a serial sort of the concatenated input gives.
func TestKWayMergeEqualKeysDeterministic(t *testing.T) {
	chunks := [][]Row{
		{{1, 10}, {1, 11}, {3, 12}},
		{{1, 20}, {2, 21}},
		{},
		{{1, 30}, {3, 31}},
	}
	got := mergeSorted(chunks, []SortKey{{Col: 0}})
	want := []Row{{1, 10}, {1, 11}, {1, 20}, {1, 30}, {2, 21}, {3, 12}, {3, 31}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order:\ngot  %v\nwant %v", got, want)
	}
	// And it must agree with a stable sort of the concatenation.
	var all []Row
	for _, c := range chunks {
		all = append(all, c...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i][0] < all[j][0] })
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("merge disagrees with stable sort:\ngot  %v\nwant %v", got, all)
	}
}

// TestTopKIdxMatchesStableSortPrefix checks the bounded heap against the
// definition runTop implements: the first limit rows of the input's
// stable sort.
func TestTopKIdxMatchesStableSortPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60)
		limit := rng.Intn(70)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(7)) // heavy ties
		}
		less := func(i, j int32) bool { return vals[i] < vals[j] }
		got := topKIdx(n, limit, less)

		ref := make([]int32, n)
		for i := range ref {
			ref[i] = int32(i)
		}
		sort.SliceStable(ref, func(a, b int) bool { return vals[ref[a]] < vals[ref[b]] })
		want := limit
		if want > n {
			want = n
		}
		if want < 0 {
			want = 0
		}
		if !reflect.DeepEqual(got, ref[:want]) && !(len(got) == 0 && want == 0) {
			t.Fatalf("trial %d (n=%d limit=%d): got %v want %v (vals %v)", trial, n, limit, got, ref[:want], vals)
		}
	}
}

// TestAggTableInlineKeyAllocs is the encodeKey regression test: feeding
// rows into existing groups through the inline fixed-width key must not
// allocate.
func TestAggTableInlineKeyAllocs(t *testing.T) {
	at := newAggTable([]int{0, 1}, []AggSpec{{Kind: AggSum, Col: 2}, {Kind: AggCount}})
	rows := make([]Row, 64)
	for i := range rows {
		rows[i] = Row{int64(i % 4), int64(i % 3), int64(i)}
	}
	// Materialize every group first, then measure steady-state lookups.
	for _, r := range rows {
		accumulate(at.entRow(r).state, at.aggs, r, 1)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		r := rows[i%len(rows)]
		accumulate(at.entRow(r).state, at.aggs, r, 1)
		i++
	})
	if avg != 0 {
		t.Fatalf("aggTable inline path allocates %.2f per row, want 0", avg)
	}
}

// TestDecodeRangeMatchesDecode checks DecodeRange against Decode for all
// encodings over assorted ranges.
func TestDecodeRangeMatchesDecode(t *testing.T) {
	mk := map[string][]int64{}
	packed := make([]int64, 500)
	rle := make([]int64, 500)
	dict := make([]int64, 500)
	for i := range packed {
		packed[i] = int64(i)*12345 + 7 // wide span: frame-of-reference packing
		rle[i] = int64(i / 100)        // long runs: RLE
		dict[i] = int64(i%3) * 1e12    // 3 distinct huge values: dictionary
	}
	mk["packed"] = packed
	mk["rle"] = rle
	mk["dict"] = dict
	for name, vals := range mk {
		s := colstore.Encode(vals)
		full := s.Decode(nil)
		for _, r := range [][2]int{{0, 500}, {0, 1}, {499, 500}, {123, 457}, {100, 100}, {37, 38}} {
			lo, hi := r[0], r[1]
			got := s.DecodeRange(lo, hi, nil)
			if !reflect.DeepEqual(append([]int64{}, got...), append([]int64{}, full[lo:hi]...)) {
				t.Fatalf("%s [%d,%d): got %v want %v", name, lo, hi, got, full[lo:hi])
			}
		}
	}
}

// TestVectorizedTraceRecordsBatches checks spans carry batch counts under
// the batch engine.
func TestVectorizedTraceRecordsBatches(t *testing.T) {
	te := newTestEnv(2)
	te.env.Vectorized = true
	stmt := &metrics.Counters{}
	te.env.Trace = trace.New("q", stmt)
	tab := te.ordersTable()
	n := scanNode(tab, []int{0, 2}, nil, 0, true)
	rows, st := te.run(n)
	if len(rows) != 200 {
		t.Fatalf("rows = %d", len(rows))
	}
	if st.Batches == 0 {
		t.Fatal("no batches recorded in stats")
	}
	sp := te.env.Trace.Root
	if sp == nil || sp.Batches == 0 {
		t.Fatalf("span batches = %+v", sp)
	}
	if sp.ActRows != 200 {
		t.Fatalf("span rows = %d", sp.ActRows)
	}
}

// TestBatchBuilderBoundaries exercises builder sealing across batch
// boundaries, zero-width batches, and range appends.
func TestBatchBuilderBoundaries(t *testing.T) {
	bb := newBatchBuilder(2, 4)
	src := [][]int64{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {10, 11, 12, 13, 14, 15, 16, 17, 18, 19}}
	bb.appendSrcRange(src, 0, 3)
	bb.appendSrcRange(src, 3, 10)
	bs := bb.finish()
	if len(bs) != 3 || bs[0].Rows() != 4 || bs[1].Rows() != 4 || bs[2].Rows() != 2 {
		t.Fatalf("batches %v", bs)
	}
	rows := batchesToRows(bs)
	for i, r := range rows {
		if r[0] != int64(i) || r[1] != int64(10+i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	// Zero-width rows round-trip through builders (COUNT(*) shapes).
	zb := newBatchBuilder(0, 4)
	for i := 0; i < 6; i++ {
		zb.room()
	}
	zrows := batchesToRows(zb.finish())
	if len(zrows) != 6 || len(zrows[0]) != 0 {
		t.Fatalf("zero-width rows %v", zrows)
	}
}

// TestVectorizedSerialParallelIdentical mirrors the row engine's
// determinism guarantee: the batch engine emits identical rows at any
// DOP.
func TestVectorizedSerialParallelIdentical(t *testing.T) {
	run := func(cores int) []Row {
		te := newTestEnv(cores)
		te.env.Vectorized = true
		orders := te.ordersTable()
		cust := te.custTable()
		join := &Node{
			Kind:      KHashJoin,
			Left:      scanNode(cust, []int{0, 1}, nil, 0, false),
			Right:     scanNode(orders, []int{0, 1, 2}, nil, 0, cores > 1),
			BuildKeys: []int{0}, ProbeKeys: []int{1}, JoinType: InnerJoin,
			Weight: orders.K, Parallel: cores > 1,
		}
		root := &Node{
			Kind: KSort, Left: join,
			Keys:   []SortKey{{Col: 2}, {Col: 0, Desc: true}},
			Weight: orders.K, Parallel: cores > 1,
		}
		rows, _ := te.run(root)
		return rows
	}
	serial := run(1)
	par := run(4)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("serial/parallel rows differ: %d vs %d", len(serial), len(par))
	}
}
