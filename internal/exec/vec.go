package exec

// This file defines the column-vector batch representation the
// vectorized engine (vecrun.go) operates on. A Batch holds Width()
// columns of equal physical length plus an optional selection vector
// listing the live rows, so a filter can narrow a batch by attaching a
// selection instead of copying column data. Operators that materialize
// (builders, partitioners) always emit compact batches (Sel == nil).

// Batch is one fixed-capacity column-vector batch.
type Batch struct {
	Cols [][]int64 // one slice per output column, equal lengths
	Sel  []int32   // live physical rows, in order; nil = all rows live
	n    int       // physical rows (column length, even for zero-width batches)
}

// Width returns the column count.
func (b *Batch) Width() int { return len(b.Cols) }

// Rows returns the live row count.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// phys maps a live row ordinal to its physical row index.
func (b *Batch) phys(i int) int32 {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return int32(i)
}

// batchSize returns the execution batch capacity in rows.
func batchSize(env *Env) int {
	if env.Cost != nil && env.Cost.BatchRows > 0 {
		return int(env.Cost.BatchRows)
	}
	return 1024
}

// batchRowCount sums live rows across batches.
func batchRowCount(bs []*Batch) int {
	total := 0
	for _, b := range bs {
		total += b.Rows()
	}
	return total
}

// batchWidth returns the column count of a batch list (0 when empty; the
// width only matters once there are rows).
func batchWidth(bs []*Batch) int {
	if len(bs) == 0 {
		return 0
	}
	return bs[0].Width()
}

// batchBuilder accumulates rows into compact fixed-size batches.
type batchBuilder struct {
	width, size int
	cur         *Batch
	done        []*Batch
	rows        int // total rows appended
}

func newBatchBuilder(width, size int) *batchBuilder {
	if size < 1 {
		size = 1
	}
	return &batchBuilder{width: width, size: size}
}

// ensure returns the current batch with room for at least one more row.
func (bb *batchBuilder) ensure() *Batch {
	if bb.cur == nil || bb.cur.n == bb.size {
		bb.seal()
		cols := make([][]int64, bb.width)
		for i := range cols {
			cols[i] = make([]int64, bb.size)
		}
		bb.cur = &Batch{Cols: cols}
	}
	return bb.cur
}

// seal closes the in-progress batch, trimming columns to the fill level.
func (bb *batchBuilder) seal() {
	if bb.cur != nil && bb.cur.n > 0 {
		for i := range bb.cur.Cols {
			bb.cur.Cols[i] = bb.cur.Cols[i][:bb.cur.n]
		}
		bb.done = append(bb.done, bb.cur)
	}
	bb.cur = nil
}

// room returns the write target for one new row: the batch and the
// physical index the caller fills every column at.
func (bb *batchBuilder) room() (*Batch, int) {
	b := bb.ensure()
	i := b.n
	b.n++
	bb.rows++
	return b, i
}

// appendBatchRow copies physical row phys of src.
func (bb *batchBuilder) appendBatchRow(src *Batch, phys int32) {
	dst, i := bb.room()
	for c := range dst.Cols {
		dst.Cols[c][i] = src.Cols[c][phys]
	}
}

// appendSrcRange bulk-copies rows [lo,hi) where builder column c reads
// src[c][r] — the scan fast path that never materializes rows.
func (bb *batchBuilder) appendSrcRange(src [][]int64, lo, hi int) {
	for lo < hi {
		b := bb.ensure()
		run := bb.size - b.n
		if run > hi-lo {
			run = hi - lo
		}
		for c := range b.Cols {
			copy(b.Cols[c][b.n:b.n+run], src[c][lo:lo+run])
		}
		b.n += run
		bb.rows += run
		lo += run
	}
}

// finish seals and returns the accumulated batches (nil when no rows).
func (bb *batchBuilder) finish() []*Batch {
	bb.seal()
	return bb.done
}

// rowsToBatches repacks materialized rows into compact batches; the
// bridge into the batch engine for row-only operators.
func rowsToBatches(rows []Row, size int) []*Batch {
	if len(rows) == 0 {
		return nil
	}
	bb := newBatchBuilder(len(rows[0]), size)
	for _, r := range rows {
		dst, i := bb.room()
		for c := range dst.Cols {
			dst.Cols[c][i] = r[c]
		}
	}
	return bb.finish()
}

// batchesToRows materializes batches as rows; the bridge out of the
// batch engine (and the final result conversion).
func batchesToRows(bs []*Batch) []Row {
	total := batchRowCount(bs)
	if total == 0 {
		return nil
	}
	out := make([]Row, 0, total)
	for _, b := range bs {
		for i := 0; i < b.Rows(); i++ {
			ph := b.phys(i)
			r := make(Row, len(b.Cols))
			for c := range b.Cols {
				r[c] = b.Cols[c][ph]
			}
			out = append(out, r)
		}
	}
	return out
}

// hashCols hashes key columns at one physical row; must match hashRow so
// both engines partition rows identically.
func hashCols(cols [][]int64, keys []int, phys int32) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range keys {
		h ^= uint64(cols[c][phys])
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return h
}

// partitionBatches hash-partitions batches by key columns, preserving
// input order within each partition — the order partitionRows produces.
func partitionBatches(bs []*Batch, keys []int, parts, size int) [][]*Batch {
	if parts <= 1 {
		return [][]*Batch{bs}
	}
	width := batchWidth(bs)
	builders := make([]*batchBuilder, parts)
	for i := range builders {
		builders[i] = newBatchBuilder(width, size)
	}
	for _, b := range bs {
		for i := 0; i < b.Rows(); i++ {
			ph := b.phys(i)
			pt := int(hashCols(b.Cols, keys, ph) % uint64(parts))
			builders[pt].appendBatchRow(b, ph)
		}
	}
	out := make([][]*Batch, parts)
	for i, bb := range builders {
		out[i] = bb.finish()
	}
	return out
}

// flattenBatches concatenates per-partition batch lists in partition
// order (the vectorized analogue of flatten).
func flattenBatches(parts [][]*Batch) []*Batch {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]*Batch, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// colset is a single compacted columnar buffer; sort and top compact
// their input into one to permute it by index.
type colset struct {
	cols [][]int64
	n    int
}

// concatBatches compacts batches into one colset, dropping selections.
func concatBatches(bs []*Batch) *colset {
	total := batchRowCount(bs)
	width := batchWidth(bs)
	cs := &colset{cols: make([][]int64, width), n: total}
	for c := range cs.cols {
		cs.cols[c] = make([]int64, total)
	}
	pos := 0
	for _, b := range bs {
		if b.Sel == nil {
			for c := range cs.cols {
				copy(cs.cols[c][pos:], b.Cols[c])
			}
			pos += b.n
		} else {
			for _, ph := range b.Sel {
				for c := range cs.cols {
					cs.cols[c][pos] = b.Cols[c][ph]
				}
				pos++
			}
		}
	}
	return cs
}

// gather emits the colset's rows in perm order as compact batches.
func (cs *colset) gather(perm []int32, size int) []*Batch {
	bb := newBatchBuilder(len(cs.cols), size)
	for _, ph := range perm {
		dst, i := bb.room()
		for c := range dst.Cols {
			dst.Cols[c][i] = cs.cols[c][ph]
		}
	}
	return bb.finish()
}

// lessKeysAt compares two physical rows of a colset by sort keys.
func lessKeysAt(cols [][]int64, keys []SortKey, a, b int32) bool {
	for _, k := range keys {
		av, bv := cols[k.Col][a], cols[k.Col][b]
		if av == bv {
			continue
		}
		if k.Desc {
			return av > bv
		}
		return av < bv
	}
	return false
}
