package exec

import (
	"math"
	"sort"

	"repro/internal/access"
	"repro/internal/sim"
)

// aggWidth returns the state slots an aggregate needs.
func aggWidth(k AggKind) int {
	if k == AggAvg {
		return 2 // sum, count
	}
	return 1
}

type groupEnt struct {
	key   Row
	state []int64
	seen  bool
}

// encodeKey builds a map key from group columns.
func encodeKey(r Row, groups []int) string {
	b := make([]byte, 0, len(groups)*8)
	for _, c := range groups {
		v := uint64(r[c])
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

func newAggState(aggs []AggSpec) []int64 {
	w := 0
	for _, a := range aggs {
		w += aggWidth(a.Kind)
	}
	st := make([]int64, w)
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggMin:
			st[i] = math.MaxInt64
		case AggMax:
			st[i] = math.MinInt64
		}
		i += aggWidth(a.Kind)
	}
	return st
}

func accumulate(st []int64, aggs []AggSpec, r Row, weight int64) {
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggSum:
			st[i] += r[a.Col] * weight
		case AggCount:
			st[i] += weight
		case AggMin:
			if r[a.Col] < st[i] {
				st[i] = r[a.Col]
			}
		case AggMax:
			if r[a.Col] > st[i] {
				st[i] = r[a.Col]
			}
		case AggAvg:
			st[i] += r[a.Col] * weight
			st[i+1] += weight
		}
		i += aggWidth(a.Kind)
	}
}

func mergeState(dst, src []int64, aggs []AggSpec) {
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggSum, AggCount:
			dst[i] += src[i]
		case AggMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case AggMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case AggAvg:
			dst[i] += src[i]
			dst[i+1] += src[i+1]
		}
		i += aggWidth(a.Kind)
	}
}

func finalize(key Row, st []int64, aggs []AggSpec) Row {
	out := make(Row, 0, len(key)+len(aggs))
	out = append(out, key...)
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggAvg:
			if st[i+1] > 0 {
				out = append(out, st[i]/st[i+1])
			} else {
				out = append(out, 0)
			}
		default:
			v := st[i]
			if a.Kind == AggMin && v == math.MaxInt64 {
				v = 0
			}
			if a.Kind == AggMax && v == math.MinInt64 {
				v = 0
			}
			out = append(out, v)
		}
		i += aggWidth(a.Kind)
	}
	return out
}

// runHashAgg aggregates the child's output. Parallel stages compute
// partition-local partial aggregates; the coordinator merges and emits
// groups in deterministic (sorted) group order. Aggregate inputs are
// weighted by the child's nominal weight so SUM/COUNT reflect nominal
// cardinalities.
func runHashAgg(p *sim.Proc, env *Env, n *Node, st *QueryStats) []Row {
	in := runNode(p, env, n.Left, st)
	parts := stageDop(env, n)
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}

	inParts := partitionRows(in, n.Groups, parts)
	partials := make([]map[string]*groupEnt, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		m := make(map[string]*groupEnt)
		rows := inParts[part]
		for _, r := range rows {
			k := encodeKey(r, n.Groups)
			g := m[k]
			if g == nil {
				g = &groupEnt{key: project(r, n.Groups), state: newAggState(n.Aggs)}
				m[k] = g
			}
			accumulate(g.state, n.Aggs, r, weight)
		}
		w := int64(len(rows)) * weight
		ctx.CPU(float64(w) * ctx.Cost.AggIPR)
		// The group table's nominal footprint: groups are dimension-level
		// entities, so their nominal count scales with the group count,
		// not the input weight.
		groupBytes := int64(len(m)) * tupleBytes(env, n.Left)
		if groupBytes > 0 {
			region := env.M.ReserveRegion(groupBytes)
			ctx.TouchRandom(region, groupBytes, w, true, 4)
		}
		partials[part] = m
	})

	// Grant accounting on the merged table.
	var totalGroups int64
	for _, m := range partials {
		totalGroups += int64(len(m))
	}
	needBytes := totalGroups * tupleBytes(env, n.Left)
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		spill(p, env, n, st, overflow, 0)
	}

	ctx := env.newCtx(p, env.home())
	merged := make(map[string]*groupEnt)
	for _, m := range partials {
		for k, g := range m {
			d := merged[k]
			if d == nil {
				merged[k] = g
			} else {
				mergeState(d.state, g.state, n.Aggs)
			}
		}
	}
	ctx.CPU(float64(totalGroups) * ctx.Cost.AggIPR)
	ctx.Flush()

	if len(n.Groups) == 0 && len(merged) == 0 {
		// Scalar aggregate over empty input: one zero row.
		return []Row{finalize(nil, newAggState(n.Aggs), n.Aggs)}
	}
	out := make([]Row, 0, len(merged))
	for _, g := range merged {
		out = append(out, finalize(g.key, g.state, n.Aggs))
	}
	ng := len(n.Groups)
	sort.Slice(out, func(i, j int) bool {
		for c := 0; c < ng; c++ {
			if out[i][c] != out[j][c] {
				return out[i][c] < out[j][c]
			}
		}
		return false
	})
	return out
}
