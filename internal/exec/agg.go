package exec

import (
	"math"
	"sort"

	"repro/internal/access"
	"repro/internal/sim"
)

// aggWidth returns the state slots an aggregate needs.
func aggWidth(k AggKind) int {
	if k == AggAvg {
		return 2 // sum, count
	}
	return 1
}

type groupEnt struct {
	key   Row
	state []int64
	seen  bool
}

// maxInlineGroupCols is the widest group-by the fixed-width array key
// covers; wider keys fall back to the byte-string encoding.
const maxInlineGroupCols = 4

// inlineKey is a fixed-width group key: group column values padded with
// zeros. Comparable, so it indexes a map without allocating per row.
type inlineKey [maxInlineGroupCols]int64

// encodeKey builds a map key from group columns (the fallback for
// group-bys wider than maxInlineGroupCols; allocates per call).
func encodeKey(r Row, groups []int) string {
	b := make([]byte, 0, len(groups)*8)
	for _, c := range groups {
		v := uint64(r[c])
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// aggTable is a group hash table keeping entries in insertion order.
// Narrow group-bys use a fixed-width array key, so looking up an
// existing group allocates nothing.
type aggTable struct {
	groups []int
	aggs   []AggSpec
	inline map[inlineKey]int32
	wide   map[string]int32
	ents   []*groupEnt
}

func newAggTable(groups []int, aggs []AggSpec) *aggTable {
	t := &aggTable{groups: groups, aggs: aggs}
	if len(groups) <= maxInlineGroupCols {
		t.inline = make(map[inlineKey]int32)
	} else {
		t.wide = make(map[string]int32)
	}
	return t
}

// len is nil-safe: a partition skipped by the deadline leaves a nil table.
func (t *aggTable) len() int {
	if t == nil {
		return 0
	}
	return len(t.ents)
}

// entRow returns row r's group entry, creating it on first sight.
func (t *aggTable) entRow(r Row) *groupEnt {
	if t.inline != nil {
		var k inlineKey
		for i, c := range t.groups {
			k[i] = r[c]
		}
		if ix, ok := t.inline[k]; ok {
			return t.ents[ix]
		}
		g := &groupEnt{key: project(r, t.groups), state: newAggState(t.aggs)}
		t.inline[k] = int32(len(t.ents))
		t.ents = append(t.ents, g)
		return g
	}
	k := encodeKey(r, t.groups)
	if ix, ok := t.wide[k]; ok {
		return t.ents[ix]
	}
	g := &groupEnt{key: project(r, t.groups), state: newAggState(t.aggs)}
	t.wide[k] = int32(len(t.ents))
	t.ents = append(t.ents, g)
	return g
}

// entCols is the columnar twin of entRow: group values come from
// cols[groups[i]][phys].
func (t *aggTable) entCols(cols [][]int64, phys int32) *groupEnt {
	if t.inline != nil {
		var k inlineKey
		for i, c := range t.groups {
			k[i] = cols[c][phys]
		}
		if ix, ok := t.inline[k]; ok {
			return t.ents[ix]
		}
		key := make(Row, len(t.groups))
		for i, c := range t.groups {
			key[i] = cols[c][phys]
		}
		g := &groupEnt{key: key, state: newAggState(t.aggs)}
		t.inline[k] = int32(len(t.ents))
		t.ents = append(t.ents, g)
		return g
	}
	key := make(Row, len(t.groups))
	for i, c := range t.groups {
		key[i] = cols[c][phys]
	}
	return t.adopt(&groupEnt{key: key, state: newAggState(t.aggs)})
}

// adopt folds g (whose key is an already-projected group row) into the
// table: absorbed into an existing entry, or inserted as-is. Returns the
// table's entry for g's key.
func (t *aggTable) adopt(g *groupEnt) *groupEnt {
	if t.inline != nil {
		var k inlineKey
		copy(k[:], g.key)
		if ix, ok := t.inline[k]; ok {
			d := t.ents[ix]
			mergeState(d.state, g.state, t.aggs)
			return d
		}
		t.inline[k] = int32(len(t.ents))
		t.ents = append(t.ents, g)
		return g
	}
	k := encodeKey(g.key, seqInts(len(g.key)))
	if ix, ok := t.wide[k]; ok {
		d := t.ents[ix]
		mergeState(d.state, g.state, t.aggs)
		return d
	}
	t.wide[k] = int32(len(t.ents))
	t.ents = append(t.ents, g)
	return g
}

// adoptAll merges a partition-local table into t.
func (t *aggTable) adoptAll(src *aggTable) {
	for _, g := range src.ents {
		t.adopt(g)
	}
}

func newAggState(aggs []AggSpec) []int64 {
	w := 0
	for _, a := range aggs {
		w += aggWidth(a.Kind)
	}
	st := make([]int64, w)
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggMin:
			st[i] = math.MaxInt64
		case AggMax:
			st[i] = math.MinInt64
		}
		i += aggWidth(a.Kind)
	}
	return st
}

func accumulate(st []int64, aggs []AggSpec, r Row, weight int64) {
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggSum:
			st[i] += r[a.Col] * weight
		case AggCount:
			st[i] += weight
		case AggMin:
			if r[a.Col] < st[i] {
				st[i] = r[a.Col]
			}
		case AggMax:
			if r[a.Col] > st[i] {
				st[i] = r[a.Col]
			}
		case AggAvg:
			st[i] += r[a.Col] * weight
			st[i+1] += weight
		}
		i += aggWidth(a.Kind)
	}
}

// accumulateCols is the columnar twin of accumulate.
func accumulateCols(st []int64, aggs []AggSpec, cols [][]int64, phys int32, weight int64) {
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggSum:
			st[i] += cols[a.Col][phys] * weight
		case AggCount:
			st[i] += weight
		case AggMin:
			if v := cols[a.Col][phys]; v < st[i] {
				st[i] = v
			}
		case AggMax:
			if v := cols[a.Col][phys]; v > st[i] {
				st[i] = v
			}
		case AggAvg:
			st[i] += cols[a.Col][phys] * weight
			st[i+1] += weight
		}
		i += aggWidth(a.Kind)
	}
}

func mergeState(dst, src []int64, aggs []AggSpec) {
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggSum, AggCount:
			dst[i] += src[i]
		case AggMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		case AggMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case AggAvg:
			dst[i] += src[i]
			dst[i+1] += src[i+1]
		}
		i += aggWidth(a.Kind)
	}
}

func finalize(key Row, st []int64, aggs []AggSpec) Row {
	out := make(Row, 0, len(key)+len(aggs))
	out = append(out, key...)
	i := 0
	for _, a := range aggs {
		switch a.Kind {
		case AggAvg:
			if st[i+1] > 0 {
				out = append(out, st[i]/st[i+1])
			} else {
				out = append(out, 0)
			}
		default:
			v := st[i]
			if a.Kind == AggMin && v == math.MaxInt64 {
				v = 0
			}
			if a.Kind == AggMax && v == math.MinInt64 {
				v = 0
			}
			out = append(out, v)
		}
		i += aggWidth(a.Kind)
	}
	return out
}

// finalizeAggTables merges partition-local tables, emits finalized
// groups in deterministic (sorted) group order, and handles the scalar
// aggregate over an empty input (one zero row). Shared by the row and
// batch hash-aggregate paths.
func finalizeAggTables(partials []*aggTable, groups []int, aggs []AggSpec) []Row {
	merged := newAggTable(groups, aggs)
	for _, t := range partials {
		if t != nil {
			merged.adoptAll(t)
		}
	}
	if len(groups) == 0 && merged.len() == 0 {
		return []Row{finalize(nil, newAggState(aggs), aggs)}
	}
	out := make([]Row, 0, merged.len())
	for _, g := range merged.ents {
		out = append(out, finalize(g.key, g.state, aggs))
	}
	ng := len(groups)
	sort.Slice(out, func(i, j int) bool {
		for c := 0; c < ng; c++ {
			if out[i][c] != out[j][c] {
				return out[i][c] < out[j][c]
			}
		}
		return false
	})
	return out
}

// runHashAgg aggregates the child's output. Parallel stages compute
// partition-local partial aggregates; the coordinator merges and emits
// groups in deterministic (sorted) group order. Aggregate inputs are
// weighted by the child's nominal weight so SUM/COUNT reflect nominal
// cardinalities.
func runHashAgg(p *sim.Proc, env *Env, n *Node, st *QueryStats, in []Row) []Row {
	parts := stageDop(env, n)
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}

	inParts := partitionRows(in, n.Groups, parts)
	partials := make([]*aggTable, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		at := newAggTable(n.Groups, n.Aggs)
		rows := inParts[part]
		for _, r := range rows {
			accumulate(at.entRow(r).state, n.Aggs, r, weight)
		}
		w := int64(len(rows)) * weight
		ctx.CPU(float64(w) * ctx.Cost.AggIPR)
		// The group table's nominal footprint: groups are dimension-level
		// entities, so their nominal count scales with the group count,
		// not the input weight.
		groupBytes := int64(at.len()) * tupleBytes(env, n.Left)
		if groupBytes > 0 {
			region := env.M.ReserveRegion(groupBytes)
			ctx.TouchRandom(region, groupBytes, w, true, 4)
		}
		partials[part] = at
	})

	// Grant accounting on the merged table.
	var totalGroups int64
	for _, at := range partials {
		totalGroups += int64(at.len())
	}
	needBytes := totalGroups * tupleBytes(env, n.Left)
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		spill(p, env, n, st, overflow, 0)
	}

	ctx := env.newCtx(p, env.home())
	out := finalizeAggTables(partials, n.Groups, n.Aggs)
	ctx.CPU(float64(totalGroups) * ctx.Cost.AggIPR)
	ctx.Flush()
	return out
}
