package exec

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/sim"
)

// Run executes a physical plan and returns its result rows and stats.
// It blocks the calling proc (the session) until the query completes.
// Env.Vectorized selects the batch engine; both engines produce
// row-identical results.
func Run(p *sim.Proc, env *Env, root *Node) ([]Row, QueryStats) {
	st := QueryStats{GrantBytes: grantBytes(env.Grant)}
	var rows []Row
	if env.Vectorized {
		rows = batchesToRows(runNodeVec(p, env, root, &st))
	} else {
		rows = runNode(p, env, root, &st)
	}
	st.OutRows = len(rows)
	st.UsedBytes = env.Grant.Used()
	// Collect failures: the coordinator's own sticky error plus anything
	// workers deposited via noteFail. A killed or failed query yields no
	// rows; the failure is re-deposited on the coordinator proc for the
	// engine to surface as a typed QueryError.
	if err := p.TakeFail(); err != nil {
		env.noteFail(err)
	}
	st.Killed = env.killed
	if env.ioErr != nil {
		p.SetFail(env.ioErr)
	}
	if env.killed || env.ioErr != nil {
		rows = nil
		st.OutRows = 0
	}
	return rows, st
}

func grantBytes(g *Grant) int64 {
	if g == nil {
		return 0
	}
	return g.Bytes
}

// runNode dispatches one plan node, opening a trace span around it when
// the query is being traced. Only the coordinator proc walks the plan
// tree, so span nesting follows call nesting exactly.
func runNode(p *sim.Proc, env *Env, n *Node, st *QueryStats) []Row {
	if env.expired(p.Now()) {
		return nil
	}
	if env.Trace == nil {
		return execNode(p, env, n, st)
	}
	sp := env.Trace.Enter(n.Kind.String(), n.Name, n.Parallel, n.EstRows, p.Now())
	rows := execNode(p, env, n, st)
	env.Trace.Exit(sp, int64(len(rows)), int64(len(rows))*n.Weight, p.Now())
	return rows
}

func execNode(p *sim.Proc, env *Env, n *Node, st *QueryStats) []Row {
	switch n.Kind {
	case KRowScan:
		return runRowScan(p, env, n)
	case KColScan:
		return runColScan(p, env, n)
	case KHashJoin:
		build := runNode(p, env, n.Left, st)
		probe := runNode(p, env, n.Right, st)
		return runHashJoin(p, env, n, st, build, probe)
	case KNLIndexJoin:
		outer := runNode(p, env, n.Left, st)
		return runNLIndexJoin(p, env, n, st, outer)
	case KMergeJoin:
		left := runNode(p, env, n.Left, st)
		right := runNode(p, env, n.Right, st)
		return runMergeJoin(p, env, n, st, left, right)
	case KHashAgg:
		in := runNode(p, env, n.Left, st)
		return runHashAgg(p, env, n, st, in)
	case KStreamAgg:
		in := runNode(p, env, n.Left, st)
		return runStreamAgg(p, env, n, st, in)
	case KSort:
		in := runNode(p, env, n.Left, st)
		return runSort(p, env, n, st, in)
	case KTop:
		in := runNode(p, env, n.Left, st)
		return runTop(p, env, n, st, in)
	case KFilter:
		in := runNode(p, env, n.Left, st)
		return runFilter(p, env, n, in)
	case KProject:
		in := runNode(p, env, n.Left, st)
		return runProject(p, env, n, in)
	default:
		panic(fmt.Sprintf("exec: unknown node kind %v", n.Kind))
	}
}

// stageDop returns the partition count for a node: parallel nodes use the
// plan DOP, serial nodes 1.
func stageDop(env *Env, n *Node) int {
	if !n.Parallel {
		return 1
	}
	return env.EffectiveDop()
}

func project(row Row, proj []int) Row {
	out := make(Row, len(proj))
	for i, c := range proj {
		out[i] = row[c]
	}
	return out
}

func runRowScan(p *sim.Proc, env *Env, n *Node) []Row {
	t := n.Heap.T
	total := t.ActualRows()
	parts := stageDop(env, n)
	results := make([][]Row, parts)
	chunk := (total + int64(parts) - 1) / int64(parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		lo := int64(part) * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			return
		}
		n.Heap.ChargeScan(ctx, lo*t.K, (hi-lo)*t.K, n.NPred)
		var out []Row
		buf := make(Row, t.NCols())
		for r := lo; r < hi; r++ {
			row := t.Row(r, buf)
			if n.Pred != nil && !n.Pred(row) {
				continue
			}
			out = append(out, project(row, n.Proj))
		}
		if parts > 1 {
			ctx.CPU(float64(int64(len(out))*n.Weight) * ctx.Cost.ExchangeIPR)
		}
		results[part] = out
	})
	return flatten(results)
}

func runColScan(p *sim.Proc, env *Env, n *Node) []Row {
	csi := n.CSI
	ix := csi.Ix
	segs := ix.Segments()
	// Map projection and predicate columns to index column positions.
	needCols := map[int]bool{}
	for _, c := range n.Proj {
		needCols[c] = true
	}
	if n.PredCols != nil {
		for _, c := range n.PredCols {
			needCols[c] = true
		}
	}
	var colPoss []int
	colOfPos := map[int]int{}
	for tc := range needCols {
		cp := ix.ColPos(tc)
		if cp < 0 {
			panic(fmt.Sprintf("exec: column %d not in columnstore %s", tc, ix.File.Name))
		}
		colPoss = append(colPoss, cp)
		colOfPos[tc] = cp
	}
	sort.Ints(colPoss)
	// COUNT(*)-shaped plans project no columns and filter on none;
	// segment row counts then come from the index's first column.
	countPos := 0
	if len(colPoss) > 0 {
		countPos = colPoss[0]
	}

	parts := segs
	if parts == 0 {
		parts = 1
	}
	results := make([][]Row, parts+1)
	env.parallel(p, parts, func(ctx *access.Ctx, seg int) {
		if segs == 0 {
			return
		}
		// Decode the needed columns of this segment.
		decoded := map[int][]int64{}
		for _, cp := range colPoss {
			csi.ChargeSegmentScan(ctx, cp, seg, n.NPred)
			decoded[cp] = ix.Segment(cp, seg).Decode(nil)
		}
		nrows := ix.Segment(countPos, seg).N
		var out []Row
		row := make(Row, ix.Table.NCols())
		for r := 0; r < nrows; r++ {
			// Materialize only the needed columns into a sparse row.
			for tc, cp := range colOfPos {
				row[tc] = decoded[cp][r]
			}
			if n.Pred != nil && !n.Pred(row) {
				continue
			}
			out = append(out, project(row, n.Proj))
		}
		if parts > 1 {
			ctx.CPU(float64(int64(len(out))*n.Weight) * ctx.Cost.ExchangeIPR)
		}
		results[seg] = out
	})
	// Delta store scan (trickle inserts not yet compressed), serial.
	if ix.DeltaNominalRows() > 0 {
		ctx := env.newCtx(p, env.home())
		csi.ChargeDeltaScan(ctx)
		ctx.Flush()
		var out []Row
		row := make(Row, ix.Table.NCols())
		for _, dr := range ix.DeltaRows() {
			for i := range row {
				row[i] = 0
			}
			for pos, tc := range ix.Cols {
				if pos < len(dr) {
					row[tc] = dr[pos]
				}
			}
			if n.Pred != nil && !n.Pred(row) {
				continue
			}
			out = append(out, project(row, n.Proj))
		}
		results[parts] = out
	}
	return flatten(results)
}

func runFilter(p *sim.Proc, env *Env, n *Node, in []Row) []Row {
	ctx := env.newCtx(p, env.home())
	ctx.CPU(float64(int64(len(in))*n.Weight) * ctx.Cost.PredIPR * float64(maxInt(n.NPred, 1)))
	ctx.Flush()
	var out []Row
	for _, r := range in {
		if n.Pred == nil || n.Pred(r) {
			out = append(out, r)
		}
	}
	return out
}

func runProject(p *sim.Proc, env *Env, n *Node, in []Row) []Row {
	ctx := env.newCtx(p, env.home())
	ctx.CPU(float64(int64(len(in))*n.Weight) * float64(len(n.Exprs)) * 2)
	ctx.Flush()
	out := make([]Row, len(in))
	for i, r := range in {
		nr := make(Row, len(n.Exprs))
		for j, e := range n.Exprs {
			nr[j] = e(r)
		}
		out[i] = nr
	}
	return out
}

func flatten(parts [][]Row) []Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Row, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
