// Package btree implements an in-memory B-tree over composite int64 keys,
// used for the engine's row-store indexes (clustered and nonclustered).
// Duplicate keys are permitted; callers that need uniqueness (required for
// exact Delete) append the row ID as a final key component.
//
// The tree provides the functional behaviour (point and range lookups in
// key order); the *cost* of probing a paper-scale index is derived from
// Geom, which computes nominal page counts and heights from the schema's
// key widths and the nominal row count.
package btree

import "math"

// Key is a composite key. Comparison is lexicographic.
type Key []int64

// Compare returns -1, 0, or 1 for a < b, a == b, a > b. A shorter key that
// is a prefix of a longer one compares less (so a prefix Seek lands at the
// first row of the prefix group).
func Compare(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] < b[i] {
			return -1
		}
		if a[i] > b[i] {
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// minDegree is the CLRS branching parameter t: every node except the root
// holds between t-1 and 2t-1 keys.
const minDegree = 32

const maxKeys = 2*minDegree - 1

type node struct {
	keys     []Key
	vals     []int64
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// findGE returns the index of the first key >= k.
func (n *node) findGE(k Key) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findGT returns the index of the first key > k.
func (n *node) findGT(k Key) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(n.keys[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Tree is a B-tree.
type Tree struct {
	root *node
	size int
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Insert adds (k, v); duplicate keys are kept.
func (t *Tree) Insert(k Key, v int64) {
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	t.root.insertNonFull(k, v)
	t.size++
}

func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := minDegree - 1
	right := &node{
		keys: append([]Key(nil), child.keys[mid+1:]...),
		vals: append([]int64(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]
	if !child.leaf() {
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = upKey
	n.vals = append(n.vals, 0)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = upVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) insertNonFull(k Key, v int64) {
	i := n.findGT(k)
	if n.leaf() {
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		return
	}
	if len(n.children[i].keys) == maxKeys {
		n.splitChild(i)
		if Compare(k, n.keys[i]) > 0 {
			i++
		}
	}
	n.children[i].insertNonFull(k, v)
}

// Get returns the value of the first entry exactly equal to k.
func (t *Tree) Get(k Key) (int64, bool) {
	it := t.Seek(k)
	if it.Valid() && Compare(it.Key(), k) == 0 {
		return it.Value(), true
	}
	return 0, false
}

// Delete removes the entry with key exactly k (the first one, if the
// caller inserted duplicates) and reports whether an entry was removed.
func (t *Tree) Delete(k Key) bool {
	if !t.root.remove(k) {
		return false
	}
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

// remove implements CLRS B-tree deletion: every recursive descent happens
// into a child that is guaranteed to hold at least minDegree keys.
func (n *node) remove(k Key) bool {
	i := n.findGE(k)
	found := i < len(n.keys) && Compare(n.keys[i], k) == 0
	if n.leaf() {
		if !found {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	if found {
		left, right := n.children[i], n.children[i+1]
		switch {
		case len(left.keys) >= minDegree:
			pk, pv := left.max()
			n.keys[i], n.vals[i] = pk, pv
			return left.remove(pk)
		case len(right.keys) >= minDegree:
			sk, sv := right.min()
			n.keys[i], n.vals[i] = sk, sv
			return right.remove(sk)
		default:
			n.mergeChildren(i)
			return n.children[i].remove(k)
		}
	}
	// Not in this node: descend into child i after ensuring it is not
	// minimal.
	if len(n.children[i].keys) < minDegree {
		i = n.fillChild(i)
	}
	return n.children[i].remove(k)
}

// fillChild grows child i to at least minDegree keys by borrowing or
// merging; it returns the (possibly shifted) child index to descend into.
func (n *node) fillChild(i int) int {
	if i > 0 && len(n.children[i-1].keys) >= minDegree {
		// Borrow from left sibling: rotate through parent key i-1.
		c, left := n.children[i], n.children[i-1]
		c.keys = append([]Key{n.keys[i-1]}, c.keys...)
		c.vals = append([]int64{n.vals[i-1]}, c.vals...)
		if !c.leaf() {
			c.children = append([]*node{left.children[len(left.children)-1]}, c.children...)
			left.children = left.children[:len(left.children)-1]
		}
		n.keys[i-1] = left.keys[len(left.keys)-1]
		n.vals[i-1] = left.vals[len(left.vals)-1]
		left.keys = left.keys[:len(left.keys)-1]
		left.vals = left.vals[:len(left.vals)-1]
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) >= minDegree {
		c, right := n.children[i], n.children[i+1]
		c.keys = append(c.keys, n.keys[i])
		c.vals = append(c.vals, n.vals[i])
		if !c.leaf() {
			c.children = append(c.children, right.children[0])
			right.children = right.children[1:]
		}
		n.keys[i] = right.keys[0]
		n.vals[i] = right.vals[0]
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		return i
	}
	if i == len(n.children)-1 {
		i--
	}
	n.mergeChildren(i)
	return i
}

// mergeChildren merges child i, parent key i, and child i+1 into child i.
func (n *node) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// max returns the largest entry in the subtree.
func (n *node) max() (Key, int64) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

// min returns the smallest entry in the subtree.
func (n *node) min() (Key, int64) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

// iterFrame is one level of the iterator's descent stack.
type iterFrame struct {
	n   *node
	idx int
}

// Iter walks entries in ascending key order.
type Iter struct {
	stack []iterFrame
}

// Seek returns an iterator positioned at the first entry >= k.
func (t *Tree) Seek(k Key) *Iter {
	it := &Iter{}
	n := t.root
	for {
		i := n.findGE(k)
		it.stack = append(it.stack, iterFrame{n, i})
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	it.normalize()
	return it
}

// Min returns an iterator at the smallest entry.
func (t *Tree) Min() *Iter {
	it := &Iter{}
	n := t.root
	for {
		it.stack = append(it.stack, iterFrame{n, 0})
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	it.normalize()
	return it
}

// normalize pops exhausted frames so that Valid/Key/Value address a real
// entry: the top frame's idx always points at an in-range key.
func (it *Iter) normalize() {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		if top.idx < len(top.n.keys) {
			return
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
}

// Valid reports whether the iterator addresses an entry.
func (it *Iter) Valid() bool { return len(it.stack) > 0 }

// Key returns the current key; only valid iterators may be dereferenced.
func (it *Iter) Key() Key { top := it.stack[len(it.stack)-1]; return top.n.keys[top.idx] }

// Value returns the current value.
func (it *Iter) Value() int64 { top := it.stack[len(it.stack)-1]; return top.n.vals[top.idx] }

// Next advances to the next entry in key order. The iterator must be
// valid. Mutating the tree invalidates iterators.
func (it *Iter) Next() {
	top := &it.stack[len(it.stack)-1]
	if top.n.leaf() {
		top.idx++
		it.normalize()
		return
	}
	// Interior: we just consumed key idx; descend into child idx+1's
	// leftmost path.
	n := top.n.children[top.idx+1]
	top.idx++
	for {
		it.stack = append(it.stack, iterFrame{n, 0})
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	it.normalize()
}

// Geom computes nominal index geometry for costing: how large and how
// tall this index would be at paper scale.
type Geom struct {
	KeyWidth    int64 // nominal key bytes
	RowRefWidth int64 // bytes per leaf row reference (0 for clustered keys)
	NominalRows int64
}

// LeafEntriesPerPage returns nominal leaf fan-out.
func (g Geom) LeafEntriesPerPage() int64 {
	w := g.KeyWidth + g.RowRefWidth + 7 // entry overhead
	n := int64(8096) / w
	if n < 2 {
		n = 2
	}
	return n
}

// LeafPages returns the nominal number of leaf pages.
func (g Geom) LeafPages() int64 {
	per := g.LeafEntriesPerPage()
	p := (g.NominalRows + per - 1) / per
	if p < 1 {
		p = 1
	}
	return p
}

// InternalFanout returns nominal internal-node fan-out.
func (g Geom) InternalFanout() int64 {
	f := int64(8096) / (g.KeyWidth + 8)
	if f < 2 {
		f = 2
	}
	return f
}

// Height returns the number of levels (1 = a single leaf/root page).
func (g Geom) Height() int64 {
	pages := float64(g.LeafPages())
	if pages <= 1 {
		return 1
	}
	h := int64(math.Ceil(math.Log(pages)/math.Log(float64(g.InternalFanout())))) + 1
	if h < 2 {
		h = 2
	}
	return h
}

// Pages returns the total nominal page count including internal levels.
func (g Geom) Pages() int64 {
	leaf := g.LeafPages()
	total := leaf
	f := g.InternalFanout()
	for level := leaf; level > 1; {
		level = (level + f - 1) / f
		total += level
	}
	return total
}

// Bytes returns the nominal index size.
func (g Geom) Bytes() int64 { return g.Pages() * 8192 }
