package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{Key{1}, Key{2}, -1},
		{Key{2}, Key{1}, 1},
		{Key{1, 2}, Key{1, 2}, 0},
		{Key{1}, Key{1, 0}, -1},
		{Key{1, 0}, Key{1}, 1},
		{Key{1, 5}, Key{1, 2}, 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(Key{i * 2}, i)
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := int64(0); i < 100; i++ {
		v, ok := tr.Get(Key{i * 2})
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
	}
	if _, ok := tr.Get(Key{1}); ok {
		t.Fatal("found missing key")
	}
}

func TestOrderedIterationMatchesSortedInsertsProperty(t *testing.T) {
	g := sim.NewRNG(17)
	f := func(nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		tr := New()
		var ref []int64
		for i := 0; i < n; i++ {
			k := g.Int64n(100000)
			tr.Insert(Key{k, int64(i)}, int64(i)) // rowid suffix for uniqueness
			ref = append(ref, k)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		it := tr.Min()
		for _, want := range ref {
			if !it.Valid() || it.Key()[0] != want {
				return false
			}
			it.Next()
		}
		return !it.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSeekPositionsAtFirstGE(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i += 10 {
		tr.Insert(Key{i}, i)
	}
	it := tr.Seek(Key{95})
	if !it.Valid() || it.Key()[0] != 100 {
		t.Fatalf("Seek(95) at %v", it.Key())
	}
	it = tr.Seek(Key{90})
	if !it.Valid() || it.Key()[0] != 90 {
		t.Fatalf("Seek(90) at %v", it.Key())
	}
	it = tr.Seek(Key{10000})
	if it.Valid() {
		t.Fatal("Seek past end should be invalid")
	}
	// Prefix seek: composite keys grouped by first component.
	tr2 := New()
	for i := int64(0); i < 10; i++ {
		for j := int64(0); j < 5; j++ {
			tr2.Insert(Key{i, j}, i*10+j)
		}
	}
	it = tr2.Seek(Key{3})
	if !it.Valid() || it.Key()[0] != 3 || it.Key()[1] != 0 {
		t.Fatalf("prefix seek at %v", it.Key())
	}
	count := 0
	for it.Valid() && it.Key()[0] == 3 {
		count++
		it.Next()
	}
	if count != 5 {
		t.Fatalf("prefix group size = %d", count)
	}
}

func TestDeleteRandomizedAgainstReference(t *testing.T) {
	g := sim.NewRNG(99)
	tr := New()
	ref := make(map[int64]int64)
	var keys []int64
	for i := 0; i < 5000; i++ {
		k := g.Int64n(10000)
		if _, exists := ref[k]; exists {
			continue
		}
		tr.Insert(Key{k}, int64(i))
		ref[k] = int64(i)
		keys = append(keys, k)
	}
	// Delete half in random order.
	perm := g.Perm(len(keys))
	for _, idx := range perm[:len(perm)/2] {
		k := keys[idx]
		if !tr.Delete(Key{k}) {
			t.Fatalf("Delete(%d) failed", k)
		}
		delete(ref, k)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(ref))
	}
	// Everything remaining is present with the right value; everything
	// deleted is gone.
	for _, k := range keys {
		v, ok := tr.Get(Key{k})
		want, exists := ref[k]
		if ok != exists || (ok && v != want) {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,%v)", k, v, ok, want, exists)
		}
	}
	// Iteration still sorted.
	it := tr.Min()
	prev := int64(-1)
	n := 0
	for it.Valid() {
		if it.Key()[0] <= prev {
			t.Fatalf("order violated: %d after %d", it.Key()[0], prev)
		}
		prev = it.Key()[0]
		n++
		it.Next()
	}
	if n != len(ref) {
		t.Fatalf("iterated %d, want %d", n, len(ref))
	}
}

func TestDeleteMissingReturnsFalse(t *testing.T) {
	tr := New()
	tr.Insert(Key{5}, 1)
	if tr.Delete(Key{6}) {
		t.Fatal("deleted missing key")
	}
	if !tr.Delete(Key{5}) || tr.Len() != 0 {
		t.Fatal("delete of present key failed")
	}
	if tr.Delete(Key{5}) {
		t.Fatal("double delete succeeded")
	}
}

func TestDeleteEverythingProperty(t *testing.T) {
	g := sim.NewRNG(3)
	f := func(nRaw uint16) bool {
		n := int(nRaw%500) + 1
		tr := New()
		ks := make([]int64, 0, n)
		seen := make(map[int64]bool)
		for i := 0; i < n; i++ {
			k := g.Int64n(5000)
			if seen[k] {
				continue
			}
			seen[k] = true
			tr.Insert(Key{k}, k)
			ks = append(ks, k)
		}
		for _, idx := range g.Perm(len(ks)) {
			if !tr.Delete(Key{ks[idx]}) {
				return false
			}
		}
		return tr.Len() == 0 && !tr.Min().Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGeom(t *testing.T) {
	g := Geom{KeyWidth: 8, RowRefWidth: 9, NominalRows: 100_000_000}
	if g.LeafEntriesPerPage() != 8096/24 {
		t.Fatalf("leaf entries = %d", g.LeafEntriesPerPage())
	}
	if g.Height() < 3 || g.Height() > 5 {
		t.Fatalf("height for 100M rows = %d", g.Height())
	}
	if g.Pages() <= g.LeafPages() {
		t.Fatal("total pages should include internal levels")
	}
	small := Geom{KeyWidth: 8, RowRefWidth: 9, NominalRows: 10}
	if small.Height() != 1 || small.LeafPages() != 1 {
		t.Fatalf("small index: height=%d leaves=%d", small.Height(), small.LeafPages())
	}
	// Bytes grows with rows.
	if g.Bytes() <= small.Bytes() {
		t.Fatal("geometry bytes not monotone")
	}
}
