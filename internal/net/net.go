// Package net models a TCP-style transport on the simulated clock,
// reusing the fluid-link machinery the replication log shipper uses
// (internal/repl): a server NIC as one ingress and one egress
// sim.FluidServer shared by every connection (so fan-in contention is
// real), per-frame one-way latency, and a bounded accept backlog whose
// overflow refuses new connections — the first admission-control line
// of the serving front end.
//
// Everything runs in simulated time on sim procs; there are no real
// sockets. Determinism follows from the simulator's lockstep execution.
package net

import (
	"errors"

	"repro/internal/sim"
)

// Typed transport errors.
var (
	ErrNoListener     = errors.New("net: connection refused (no listener)")
	ErrRefused        = errors.New("net: connection refused (accept backlog full)")
	ErrListenerClosed = errors.New("net: listener closed")
	ErrClosed         = errors.New("net: connection closed")
)

// Config sizes the simulated transport.
type Config struct {
	LinkMBps      float64      // per-direction NIC bandwidth (default 1000)
	Latency       sim.Duration // one-way frame latency (default 100µs)
	AcceptBacklog int          // pending-connection bound per listener (default 64)
}

func (c Config) withDefaults() Config {
	if c.LinkMBps <= 0 {
		c.LinkMBps = 1000
	}
	if c.Latency <= 0 {
		c.Latency = 100 * sim.Microsecond
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 64
	}
	return c
}

// Network is one simulated network segment: clients dial listeners by
// address through a shared pair of directional links.
type Network struct {
	Sm  *sim.Sim
	Cfg Config

	ingress *sim.FluidServer // client → server direction
	egress  *sim.FluidServer // server → client direction

	listeners map[string]*Listener

	// Refused counts dials rejected for a full accept backlog;
	// NoListener counts dials to closed or absent addresses.
	Refused    int64
	NoListener int64
}

// New builds a network on the simulation.
func New(sm *sim.Sim, cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		Sm:        sm,
		Cfg:       cfg,
		ingress:   sim.NewFluidServer(cfg.LinkMBps * 1e6),
		egress:    sim.NewFluidServer(cfg.LinkMBps * 1e6),
		listeners: make(map[string]*Listener),
	}
}

// Listen binds a listener to addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	if _, ok := n.listeners[addr]; ok {
		return nil, errors.New("net: address in use: " + addr)
	}
	l := &Listener{nw: n, addr: addr}
	n.listeners[addr] = l
	return l, nil
}

// Dial opens a connection to addr from proc p, charging the SYN/SYN-ACK
// round trip. A full accept backlog refuses the connection (counted on
// the network), mirroring a saturated listen(2) queue.
func (n *Network) Dial(p *sim.Proc, addr string) (*Conn, error) {
	p.Sleep(n.Cfg.Latency) // SYN travels to the server
	l := n.listeners[addr]
	if l == nil || l.closed {
		n.NoListener++
		p.Sleep(n.Cfg.Latency) // RST back
		return nil, ErrNoListener
	}
	if len(l.backlog) >= n.Cfg.AcceptBacklog {
		n.Refused++
		l.Refused++
		p.Sleep(n.Cfg.Latency) // RST back
		return nil, ErrRefused
	}
	client := &Conn{nw: n, out: n.ingress}
	server := &Conn{nw: n, out: n.egress}
	client.peer, server.peer = server, client
	l.backlog = append(l.backlog, server)
	l.waiters.WakeAll(n.Sm)
	p.Sleep(n.Cfg.Latency) // SYN-ACK travels back
	return client, nil
}

// Listener accepts inbound connections on an address.
type Listener struct {
	nw      *Network
	addr    string
	backlog []*Conn
	waiters sim.WaitQueue
	closed  bool

	Accepted int64
	Refused  int64
}

// Accept blocks p until a pending connection is available or the
// listener closes (ErrListenerClosed).
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	for len(l.backlog) == 0 && !l.closed {
		l.waiters.Wait(p)
	}
	if len(l.backlog) == 0 {
		return nil, ErrListenerClosed
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	l.Accepted++
	return c, nil
}

// Close unbinds the listener, wakes blocked acceptors, and resets every
// connection still waiting in the backlog (their clients observe
// ErrClosed, as after a RST).
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.nw.listeners, l.addr)
	for _, c := range l.backlog {
		c.Close()
	}
	l.backlog = nil
	l.waiters.WakeAll(l.nw.Sm)
}

// Depth returns the current accept-backlog depth.
func (l *Listener) Depth() int { return len(l.backlog) }

// Conn is one endpoint of an established connection.
type Conn struct {
	nw     *Network
	peer   *Conn
	out    *sim.FluidServer // directional link this endpoint transmits on
	inbox  [][]byte
	rq     sim.WaitQueue
	closed bool
	failed error // typed error delivered to pending/future Recv calls
}

// Send transmits one encoded frame: bandwidth on this direction's
// shared link, then one-way latency, then delivery to the peer's inbox.
// Sending on or to a closed connection returns ErrClosed.
func (c *Conn) Send(p *sim.Proc, frame []byte) error {
	if c.closed {
		return ErrClosed
	}
	c.out.Serve(p, float64(len(frame)))
	p.Sleep(c.nw.Cfg.Latency)
	if c.peer.closed {
		return ErrClosed
	}
	c.peer.deliver(frame)
	return nil
}

// Deliver places a frame directly in the peer's inbox with no bandwidth
// or latency charge — the control-plane path for shutdown/teardown
// notifications issued from outside any proc (e.g. Server.Stop draining
// an admission queue), where parking to charge a link is impossible.
// Data-plane traffic must use Send.
func (c *Conn) Deliver(frame []byte) {
	if c.closed || c.peer.closed {
		return
	}
	c.peer.deliver(frame)
}

func (c *Conn) deliver(frame []byte) {
	c.inbox = append(c.inbox, frame)
	c.rq.WakeAll(c.nw.Sm)
}

// Recv blocks p until a frame arrives, draining buffered frames first.
// After the inbox drains it returns the peer's close (ErrClosed) or the
// typed error installed by Fail.
func (c *Conn) Recv(p *sim.Proc) ([]byte, error) {
	for len(c.inbox) == 0 && !c.closed && c.failed == nil && !c.peer.closed {
		c.rq.Wait(p)
	}
	if len(c.inbox) > 0 {
		f := c.inbox[0]
		c.inbox = c.inbox[1:]
		return f, nil
	}
	if c.failed != nil {
		return nil, c.failed
	}
	return nil, ErrClosed
}

// Close tears down both endpoints and wakes blocked receivers; buffered
// frames on either side remain readable before the close is observed.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.rq.WakeAll(c.nw.Sm)
	if c.peer != nil && !c.peer.closed {
		c.peer.closed = true
		c.peer.rq.WakeAll(c.nw.Sm)
	}
}

// Fail installs a typed error on the PEER endpoint and closes the
// connection: the peer's pending and future Recv calls return err once
// their inbox drains. This is how the serving layer wakes sessions
// parked on a reply when the server stops mid-request.
func (c *Conn) Fail(err error) {
	if c.closed {
		return
	}
	if c.peer != nil {
		c.peer.failed = err
	}
	c.Close()
}

// Closed reports whether the endpoint is closed.
func (c *Conn) Closed() bool { return c.closed }
