// Package net models a TCP-style transport on the simulated clock,
// reusing the fluid-link machinery the replication log shipper uses
// (internal/repl): a server NIC as one ingress and one egress
// sim.FluidServer shared by every connection (so fan-in contention is
// real), per-frame one-way latency, and a bounded accept backlog whose
// overflow refuses new connections — the first admission-control line
// of the serving front end.
//
// The transport also carries a seeded link-fault model (driven by
// internal/fault through SetPartition/SetLossProb/SetDegrade/ResetConns):
// full and asymmetric partitions park sends until the link heals, frames
// are lost per-frame with a private RNG, bandwidth/latency degrade by a
// factor, and connections reset mid-stream with a typed error. Every
// fault is a sim-clock event producing a typed error (ErrPeerReset,
// ErrPartitioned, ErrTimeout) rather than a silent hang; with no fault
// armed the data path performs no RNG draws and no extra sleeps, so
// fault-free runs stay byte-identical to a build without the model.
//
// Everything runs in simulated time on sim procs; there are no real
// sockets. Determinism follows from the simulator's lockstep execution.
package net

import (
	"errors"
	"sort"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Typed transport errors.
var (
	ErrNoListener     = errors.New("net: connection refused (no listener)")
	ErrBacklogFull    = errors.New("net: connection refused (accept backlog full)")
	ErrListenerClosed = errors.New("net: listener closed")
	ErrClosed         = errors.New("net: connection closed")
	ErrPeerReset      = errors.New("net: connection reset by peer")
	ErrPartitioned    = errors.New("net: network partitioned")
	ErrTimeout        = errors.New("net: receive timeout")
)

// ErrRefused is the pre-fault-model name for ErrBacklogFull, kept so
// errors.Is and existing call sites keep working.
var ErrRefused = ErrBacklogFull

// PartitionMode selects which direction of the segment is cut.
type PartitionMode int

const (
	PartitionNone     PartitionMode = iota
	PartitionBoth                   // full partition: nothing crosses
	PartitionToServer               // asymmetric: client→server blocked
	PartitionToClient               // asymmetric: server→client blocked
)

func (m PartitionMode) String() string {
	switch m {
	case PartitionNone:
		return "none"
	case PartitionBoth:
		return "both"
	case PartitionToServer:
		return "to-server"
	case PartitionToClient:
		return "to-client"
	}
	return "invalid"
}

// Config sizes the simulated transport.
type Config struct {
	LinkMBps      float64      // per-direction NIC bandwidth (default 1000)
	Latency       sim.Duration // one-way frame latency (default 100µs)
	AcceptBacklog int          // pending-connection bound per listener (default 64)
	FaultSeed     int64        // seeds the private per-frame loss RNG
}

func (c Config) withDefaults() Config {
	if c.LinkMBps <= 0 {
		c.LinkMBps = 1000
	}
	if c.Latency <= 0 {
		c.Latency = 100 * sim.Microsecond
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 64
	}
	return c
}

// FaultCounters is the transport's cumulative fault accounting.
type FaultCounters struct {
	FramesDropped    int64 // frames lost after transmit (per-frame loss)
	Resets           int64 // connections reset mid-stream
	Partitions       int64 // transitions into a partitioned state
	DialsPartitioned int64 // dials refused because the segment was cut
	DegradeEvents    int64 // transitions into a degraded (factor>1) state
}

// Network is one simulated network segment: clients dial listeners by
// address through a shared pair of directional links.
type Network struct {
	Sm  *sim.Sim
	Cfg Config

	ingress *sim.FluidServer // client → server direction
	egress  *sim.FluidServer // server → client direction

	listeners map[string]*Listener

	// Refused counts dials rejected for a full accept backlog;
	// NoListener counts dials to closed or absent addresses.
	Refused    int64
	NoListener int64

	// Link-fault state (see SetPartition/SetLossProb/SetDegrade).
	partition PartitionMode
	lossProb  float64
	degrade   float64       // ≥1: latency multiplier, bandwidth divisor
	faultRNG  *sim.RNG      // private per-frame loss stream
	healQ     sim.WaitQueue // partition-parked senders wait here
	conns     map[uint64]*Conn
	nextPair  uint64
	Flt       FaultCounters
}

// New builds a network on the simulation.
func New(sm *sim.Sim, cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		Sm:        sm,
		Cfg:       cfg,
		ingress:   sim.NewFluidServer(cfg.LinkMBps * 1e6),
		egress:    sim.NewFluidServer(cfg.LinkMBps * 1e6),
		listeners: make(map[string]*Listener),
		degrade:   1,
		faultRNG:  sim.NewRNG(cfg.FaultSeed ^ 0x6e6574), // "net"; no draws unless loss armed
		conns:     make(map[uint64]*Conn),
	}
}

// lat is the effective one-way latency under the current degrade factor.
func (n *Network) lat() sim.Duration {
	if n.degrade == 1 {
		return n.Cfg.Latency
	}
	return sim.Duration(float64(n.Cfg.Latency) * n.degrade)
}

// blockedDir reports whether frames travelling in the given direction
// are currently cut by a partition.
func (n *Network) blockedDir(toServer bool) bool {
	switch n.partition {
	case PartitionBoth:
		return true
	case PartitionToServer:
		return toServer
	case PartitionToClient:
		return !toServer
	}
	return false
}

// SetPartition cuts (or heals, with PartitionNone) the segment. Senders
// whose direction is cut park until heal; dials fail typed. Healing
// wakes every parked sender.
func (n *Network) SetPartition(m PartitionMode) {
	if m == n.partition {
		return
	}
	if n.partition == PartitionNone {
		n.Flt.Partitions++
	}
	n.partition = m
	n.healQ.WakeAll(n.Sm)
}

// Partition returns the current partition mode.
func (n *Network) Partition() PartitionMode { return n.partition }

// SetLossProb arms (or with 0 disarms) per-frame loss: each delivered
// frame is independently dropped with probability prob, drawn from the
// network's private RNG so the simulation's streams are untouched.
func (n *Network) SetLossProb(prob float64) {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	n.lossProb = prob
}

// SetDegrade applies a bandwidth/latency degradation factor: link rate
// divides by factor and one-way latency multiplies by it. Factor 1
// restores nominal service.
func (n *Network) SetDegrade(factor float64) {
	if factor < 1 {
		factor = 1
	}
	if factor > 1 && n.degrade == 1 {
		n.Flt.DegradeEvents++
	}
	n.degrade = factor
	n.ingress.SetRate(n.Cfg.LinkMBps * 1e6 / factor)
	n.egress.SetRate(n.Cfg.LinkMBps * 1e6 / factor)
}

// ResetConns resets a fraction of the live connections mid-stream (both
// endpoints observe ErrPeerReset after draining buffered frames). The
// victims are the oldest conns in pair-id order, so the choice is
// deterministic. Returns how many were reset.
func (n *Network) ResetConns(frac float64) int {
	if frac <= 0 || len(n.conns) == 0 {
		return 0
	}
	ids := make([]uint64, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	k := len(ids)
	if frac < 1 {
		k = int(frac * float64(len(ids)))
		if k < 1 {
			k = 1
		}
	}
	for _, id := range ids[:k] {
		n.conns[id].reset()
	}
	return k
}

// ActiveConns reports the number of live connections.
func (n *Network) ActiveConns() int { return len(n.conns) }

// RegisterTelemetry registers the transport's fault/health series.
func (n *Network) RegisterTelemetry(r *telemetry.Registry) {
	r.Gauge("net", "active_conns", "conns", func() float64 { return float64(len(n.conns)) })
	r.Gauge("net", "partition", "mode", func() float64 { return float64(n.partition) })
	r.Gauge("net", "degrade", "factor", func() float64 { return n.degrade })
	r.CounterFunc("net", "frames_dropped", "frames", func() float64 { return float64(n.Flt.FramesDropped) })
	r.CounterFunc("net", "resets", "conns", func() float64 { return float64(n.Flt.Resets) })
	r.CounterFunc("net", "partitions", "events", func() float64 { return float64(n.Flt.Partitions) })
	r.CounterFunc("net", "dials_refused", "dials", func() float64 { return float64(n.Refused) })
	r.CounterFunc("net", "dials_no_listener", "dials", func() float64 { return float64(n.NoListener) })
	r.CounterFunc("net", "dials_partitioned", "dials", func() float64 { return float64(n.Flt.DialsPartitioned) })
}

// Listen binds a listener to addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	if _, ok := n.listeners[addr]; ok {
		return nil, errors.New("net: address in use: " + addr)
	}
	l := &Listener{nw: n, addr: addr}
	n.listeners[addr] = l
	return l, nil
}

// Dial opens a connection to addr from proc p, charging the SYN/SYN-ACK
// round trip. A full accept backlog refuses the connection (counted on
// the network), mirroring a saturated listen(2) queue; a partitioned
// segment refuses it typed (the SYN or SYN-ACK cannot cross).
func (n *Network) Dial(p *sim.Proc, addr string) (*Conn, error) {
	p.Sleep(n.lat()) // SYN travels to the server
	if n.partition != PartitionNone {
		n.Flt.DialsPartitioned++
		p.Sleep(n.lat()) // connect timeout stands in for the lost SYN
		return nil, ErrPartitioned
	}
	l := n.listeners[addr]
	if l == nil || l.closed {
		n.NoListener++
		p.Sleep(n.lat()) // RST back
		return nil, ErrNoListener
	}
	if len(l.backlog) >= n.Cfg.AcceptBacklog {
		n.Refused++
		l.Refused++
		p.Sleep(n.lat()) // RST back
		return nil, ErrBacklogFull
	}
	id := n.nextPair
	n.nextPair++
	client := &Conn{nw: n, out: n.ingress, toServer: true, id: id}
	server := &Conn{nw: n, out: n.egress, id: id}
	client.peer, server.peer = server, client
	n.conns[id] = client
	l.backlog = append(l.backlog, server)
	l.waiters.WakeAll(n.Sm)
	p.Sleep(n.lat()) // SYN-ACK travels back
	return client, nil
}

// Listener accepts inbound connections on an address.
type Listener struct {
	nw      *Network
	addr    string
	backlog []*Conn
	waiters sim.WaitQueue
	closed  bool

	Accepted int64
	Refused  int64
}

// Accept blocks p until a pending connection is available or the
// listener closes (ErrListenerClosed).
func (l *Listener) Accept(p *sim.Proc) (*Conn, error) {
	for len(l.backlog) == 0 && !l.closed {
		l.waiters.Wait(p)
	}
	if len(l.backlog) == 0 {
		return nil, ErrListenerClosed
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	l.Accepted++
	return c, nil
}

// Close unbinds the listener, wakes blocked acceptors, and resets every
// connection still waiting in the backlog (their clients observe
// ErrClosed, as after a RST).
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.nw.listeners, l.addr)
	for _, c := range l.backlog {
		c.Close()
	}
	l.backlog = nil
	l.waiters.WakeAll(l.nw.Sm)
}

// Depth returns the current accept-backlog depth.
func (l *Listener) Depth() int { return len(l.backlog) }

// Conn is one endpoint of an established connection.
type Conn struct {
	nw       *Network
	peer     *Conn
	out      *sim.FluidServer // directional link this endpoint transmits on
	toServer bool             // transmits client→server (dialer side)
	id       uint64           // pair id, shared by both endpoints
	inbox    [][]byte
	rq       sim.WaitQueue
	closed   bool
	wasReset bool
	failed   error // typed error delivered to pending/future Recv calls
}

// Pair returns the connection's pair id — identical on both endpoints
// and unique per dial on this network, so client and server can
// correlate their views of one connection.
func (c *Conn) Pair() uint64 { return c.id }

// closeErr is the typed error a sender observes on a dead connection.
func (c *Conn) closeErr() error {
	if c.wasReset || (c.peer != nil && c.peer.wasReset) {
		return ErrPeerReset
	}
	return ErrClosed
}

// Send transmits one encoded frame: bandwidth on this direction's
// shared link, then one-way latency, then delivery to the peer's inbox.
// A partition covering this direction parks the send until heal (or
// until the connection dies, surfacing the typed reset). Sending on or
// to a closed connection returns ErrClosed, or ErrPeerReset after a
// mid-stream reset.
func (c *Conn) Send(p *sim.Proc, frame []byte) error {
	if c.closed {
		return c.closeErr()
	}
	for c.nw.blockedDir(c.toServer) && !c.closed {
		c.nw.healQ.Wait(p)
	}
	if c.closed {
		return c.closeErr()
	}
	c.out.Serve(p, float64(len(frame)))
	p.Sleep(c.nw.lat())
	if c.closed || c.peer.closed {
		return c.closeErr()
	}
	if c.nw.lossProb > 0 && c.nw.faultRNG.Float64() < c.nw.lossProb {
		c.nw.Flt.FramesDropped++
		return nil // lost in flight; the sender cannot tell
	}
	c.peer.deliver(frame)
	return nil
}

// Deliver places a frame directly in the peer's inbox with no bandwidth
// or latency charge — the control-plane path for shutdown/teardown
// notifications issued from outside any proc (e.g. Server.Stop draining
// an admission queue), where parking to charge a link is impossible.
// Data-plane traffic must use Send.
func (c *Conn) Deliver(frame []byte) {
	if c.closed || c.peer.closed {
		return
	}
	c.peer.deliver(frame)
}

func (c *Conn) deliver(frame []byte) {
	c.inbox = append(c.inbox, frame)
	c.rq.WakeAll(c.nw.Sm)
}

// Recv blocks p until a frame arrives, draining buffered frames first.
// After the inbox drains it returns the peer's close (ErrClosed) or the
// typed error installed by Fail or a reset (ErrPeerReset).
func (c *Conn) Recv(p *sim.Proc) ([]byte, error) {
	for len(c.inbox) == 0 && !c.closed && c.failed == nil && !c.peer.closed {
		c.rq.Wait(p)
	}
	return c.recvTail()
}

// RecvTimeout is Recv with a deadline: it returns ErrTimeout if no
// frame, close, or failure arrives within d. A timed-out connection may
// still deliver the reply later, so callers that time out must abandon
// the connection rather than reuse it.
func (c *Conn) RecvTimeout(p *sim.Proc, d sim.Duration) ([]byte, error) {
	deadline := p.Now() + sim.Time(d)
	for len(c.inbox) == 0 && !c.closed && c.failed == nil && !c.peer.closed {
		remain := sim.Duration(deadline - p.Now())
		if remain <= 0 {
			return nil, ErrTimeout
		}
		if c.rq.WaitTimeout(p, remain) {
			return nil, ErrTimeout
		}
	}
	return c.recvTail()
}

func (c *Conn) recvTail() ([]byte, error) {
	if len(c.inbox) > 0 {
		f := c.inbox[0]
		c.inbox = c.inbox[1:]
		return f, nil
	}
	if c.failed != nil {
		return nil, c.failed
	}
	return nil, ErrClosed
}

// Close tears down both endpoints and wakes blocked receivers; buffered
// frames on either side remain readable before the close is observed.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	delete(c.nw.conns, c.id)
	c.closed = true
	c.rq.WakeAll(c.nw.Sm)
	if c.peer != nil && !c.peer.closed {
		c.peer.closed = true
		c.peer.rq.WakeAll(c.nw.Sm)
	}
	// Partition-parked senders on this conn must wake to observe the
	// death (no-op when nothing is parked).
	c.nw.healQ.WakeAll(c.nw.Sm)
}

// reset kills the connection mid-stream: both endpoints observe
// ErrPeerReset once their buffered frames drain.
func (c *Conn) reset() {
	if c.closed {
		return
	}
	c.nw.Flt.Resets++
	c.wasReset = true
	c.failed = ErrPeerReset
	if c.peer != nil {
		c.peer.wasReset = true
		c.peer.failed = ErrPeerReset
	}
	c.Close()
}

// Fail installs a typed error on the PEER endpoint and closes the
// connection: the peer's pending and future Recv calls return err once
// their inbox drains. This is how the serving layer wakes sessions
// parked on a reply when the server stops mid-request.
func (c *Conn) Fail(err error) {
	if c.closed {
		return
	}
	if c.peer != nil {
		c.peer.failed = err
	}
	c.Close()
}

// Closed reports whether the endpoint is closed.
func (c *Conn) Closed() bool { return c.closed }
