package net

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// pairUp establishes one accepted connection and hands both ends back.
func pairUp(t *testing.T, sm *sim.Sim, nw *Network) (client, server *Conn) {
	t.Helper()
	l, err := nw.Listen("db")
	if err != nil {
		t.Fatal(err)
	}
	sm.Spawn("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		server = c
	})
	sm.Spawn("client", func(p *sim.Proc) {
		c, err := nw.Dial(p, "db")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		client = c
	})
	sm.Run(sm.Now() + sim.Time(sim.Second))
	if client == nil || server == nil {
		t.Fatal("connection did not establish")
	}
	return client, server
}

func TestPartitionParksSendsUntilHeal(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	client, server := pairUp(t, sm, nw)

	nw.SetPartition(PartitionBoth)
	var sentAt, healAt sim.Time
	var got []byte
	sm.Spawn("send", func(p *sim.Proc) {
		if err := client.Send(p, []byte("hi")); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		sentAt = p.Now()
	})
	sm.Spawn("recv", func(p *sim.Proc) {
		f, err := server.Recv(p)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = f
	})
	sm.Spawn("heal", func(p *sim.Proc) {
		p.Sleep(50 * sim.Millisecond)
		healAt = p.Now()
		nw.SetPartition(PartitionNone)
	})
	sm.Run(sm.Now() + sim.Time(sim.Second))
	if string(got) != "hi" {
		t.Fatalf("frame did not arrive after heal: %q", got)
	}
	if sentAt < healAt {
		t.Fatalf("send completed at %v, before the heal at %v", sentAt, healAt)
	}
	if nw.Flt.Partitions != 1 {
		t.Fatalf("partition transitions = %d, want 1", nw.Flt.Partitions)
	}
}

func TestAsymmetricPartitionBlocksOneDirection(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	client, server := pairUp(t, sm, nw)

	// Client->server cut: the server can still talk to the client.
	nw.SetPartition(PartitionToServer)
	var fromServer []byte
	toServerDone := false
	sm.Spawn("server-send", func(p *sim.Proc) {
		if err := server.Send(p, []byte("down")); err != nil {
			t.Errorf("server send: %v", err)
		}
	})
	sm.Spawn("client-recv", func(p *sim.Proc) {
		f, err := client.Recv(p)
		if err != nil {
			t.Errorf("client recv: %v", err)
			return
		}
		fromServer = f
	})
	sm.Spawn("client-send", func(p *sim.Proc) {
		client.Send(p, []byte("up"))
		toServerDone = true
	})
	sm.Run(sm.Now() + sim.Time(sim.Second))
	if string(fromServer) != "down" {
		t.Fatalf("server->client frame blocked by a to-server partition")
	}
	if toServerDone {
		t.Fatal("client->server send completed through a to-server partition")
	}
}

func TestDialPartitionedTyped(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	if _, err := nw.Listen("db"); err != nil {
		t.Fatal(err)
	}
	nw.SetPartition(PartitionBoth)
	var derr error
	sm.Spawn("client", func(p *sim.Proc) {
		_, derr = nw.Dial(p, "db")
	})
	sm.Run(sim.Time(sim.Second))
	if !errors.Is(derr, ErrPartitioned) {
		t.Fatalf("dial across a partition: %v, want ErrPartitioned", derr)
	}
	if nw.Flt.DialsPartitioned != 1 {
		t.Fatalf("DialsPartitioned = %d, want 1", nw.Flt.DialsPartitioned)
	}
}

func TestFrameLossDropsSeededFraction(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 10 * sim.Microsecond, FaultSeed: 7})
	client, server := pairUp(t, sm, nw)
	nw.SetLossProb(0.5)
	const n = 200
	var arrived int
	sm.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := client.Send(p, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	})
	sm.Spawn("recv", func(p *sim.Proc) {
		for {
			if _, err := server.RecvTimeout(p, 100*sim.Millisecond); err != nil {
				return
			}
			arrived++
		}
	})
	sm.Run(sim.Time(10 * sim.Second))
	if arrived == 0 || arrived == n {
		t.Fatalf("arrived = %d of %d, want a lossy fraction strictly between", arrived, n)
	}
	if nw.Flt.FramesDropped != int64(n-arrived) {
		t.Fatalf("FramesDropped = %d, want %d", nw.Flt.FramesDropped, n-arrived)
	}
}

func TestDegradeSlowsTransfer(t *testing.T) {
	run := func(factor float64) sim.Time {
		sm := sim.New(1)
		nw := New(sm, Config{LinkMBps: 10, Latency: 100 * sim.Microsecond})
		client, server := pairUp(t, sm, nw)
		if factor > 1 {
			nw.SetDegrade(factor)
		}
		start := sm.Now()
		var done sim.Time
		sm.Spawn("send", func(p *sim.Proc) {
			client.Send(p, make([]byte, 64<<10))
		})
		sm.Spawn("recv", func(p *sim.Proc) {
			if _, err := server.Recv(p); err == nil {
				done = p.Now() - start
			}
		})
		sm.Run(start + sim.Time(10*sim.Second))
		return done
	}
	base, slow := run(1), run(4)
	if base == 0 || slow == 0 {
		t.Fatal("transfer did not complete")
	}
	// 4x degradation divides bandwidth and multiplies latency: the same
	// 64 KB transfer must take several times longer.
	if slow < 3*base {
		t.Fatalf("degraded transfer %v vs base %v, want >= 3x", slow, base)
	}
}

func TestResetDeliversBufferedFramesThenTypedError(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 10 * sim.Microsecond})
	client, server := pairUp(t, sm, nw)

	var got []byte
	var rerr, serr error
	sm.Spawn("script", func(p *sim.Proc) {
		if err := client.Send(p, []byte("last words")); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		p.Sleep(sim.Millisecond) // let the frame land in the inbox
		if n := nw.ResetConns(1); n != 1 {
			t.Errorf("ResetConns reset %d conns, want 1", n)
		}
		// Buffered frames drain first; only then the typed reset surfaces.
		got, rerr = server.Recv(p)
		_, rerr = server.Recv(p)
		serr = client.Send(p, []byte("after"))
	})
	sm.Run(sm.Now() + sim.Time(sim.Second))
	if string(got) != "last words" {
		t.Fatalf("buffered frame lost across reset: %q", got)
	}
	if !errors.Is(rerr, ErrPeerReset) {
		t.Fatalf("recv after reset: %v, want ErrPeerReset", rerr)
	}
	if !errors.Is(serr, ErrPeerReset) {
		t.Fatalf("send after reset: %v, want ErrPeerReset", serr)
	}
	if nw.Flt.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", nw.Flt.Resets)
	}
}

func TestResetConnsOldestFirstFraction(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 10 * sim.Microsecond})
	l, err := nw.Listen("db")
	if err != nil {
		t.Fatal(err)
	}
	sm.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := l.Accept(p); err != nil {
				return
			}
		}
	})
	conns := make([]*Conn, 4)
	for i := 0; i < 4; i++ {
		i := i
		sm.Spawn("client", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Millisecond)
			c, err := nw.Dial(p, "db")
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			conns[i] = c
		})
	}
	sm.Run(sim.Time(sim.Second))
	if n := nw.ResetConns(0.5); n != 2 {
		t.Fatalf("ResetConns(0.5) over 4 conns reset %d, want 2", n)
	}
	// Oldest (lowest pair id) die first.
	for i, c := range conns {
		wantDead := i < 2
		if c.Closed() != wantDead {
			t.Fatalf("conn %d closed=%v, want %v", i, c.Closed(), wantDead)
		}
	}
	if nw.ActiveConns() != 2 {
		t.Fatalf("ActiveConns = %d, want 2", nw.ActiveConns())
	}
}

func TestRecvTimeoutTypedAndLeavesConnUsable(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 10 * sim.Microsecond})
	client, server := pairUp(t, sm, nw)
	var terr error
	var late []byte
	sm.Spawn("recv", func(p *sim.Proc) {
		_, terr = server.RecvTimeout(p, 5*sim.Millisecond)
		late, _ = server.Recv(p) // the connection itself is still healthy
	})
	sm.Spawn("send", func(p *sim.Proc) {
		p.Sleep(20 * sim.Millisecond)
		client.Send(p, []byte("late"))
	})
	sm.Run(sm.Now() + sim.Time(sim.Second))
	if !errors.Is(terr, ErrTimeout) {
		t.Fatalf("RecvTimeout: %v, want ErrTimeout", terr)
	}
	if string(late) != "late" {
		t.Fatalf("post-timeout recv got %q", late)
	}
}

func TestChaosOffDrawsNoFaultRandomness(t *testing.T) {
	// A network with fault machinery armed but no fault applied must not
	// consume its fault RNG: byte-identity of chaos-off runs depends on it.
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 10 * sim.Microsecond, FaultSeed: 3})
	client, server := pairUp(t, sm, nw)
	before := nw.faultRNG.Float64()
	sm.Spawn("traffic", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			client.Send(p, []byte("x"))
		}
	})
	sm.Spawn("drain", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if _, err := server.Recv(p); err != nil {
				return
			}
		}
	})
	sm.Run(sm.Now() + sim.Time(sim.Second))
	// The stream advanced exactly once (our probe draw above): the next
	// value from a fresh RNG at the same position must match.
	probe := sim.NewRNG(3 ^ 0x6e6574)
	if got := probe.Float64(); got != before {
		t.Fatalf("fault stream head %v, want %v", before, got)
	}
	next, nextWant := nw.faultRNG.Float64(), probe.Float64()
	if next != nextWant {
		t.Fatalf("fault RNG advanced during chaos-off traffic: %v != %v", next, nextWant)
	}
	var c FaultCounters
	if nw.Flt != c {
		t.Fatalf("fault counters moved during chaos-off traffic: %+v", nw.Flt)
	}
}
