package net

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestDialSendRecvRoundTrip(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	l, err := nw.Listen("db")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	sm.Spawn("server", func(p *sim.Proc) {
		c, err := l.Accept(p)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		f, err := c.Recv(p)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = f
		if err := c.Send(p, []byte("pong")); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	var reply []byte
	var elapsed sim.Time
	sm.Spawn("client", func(p *sim.Proc) {
		c, err := nw.Dial(p, "db")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		t0 := p.Now()
		if err := c.Send(p, []byte("ping")); err != nil {
			t.Errorf("send: %v", err)
		}
		reply, err = c.Recv(p)
		if err != nil {
			t.Errorf("recv reply: %v", err)
		}
		elapsed = p.Now() - t0
		c.Close()
	})
	sm.Run(sim.Time(sim.Second))
	if string(got) != "ping" || string(reply) != "pong" {
		t.Fatalf("got %q, reply %q", got, reply)
	}
	// The request/reply pair crosses the link twice: at least two one-way
	// latencies plus transmission time must have elapsed in simulated time.
	if elapsed < sim.Time(2*100*sim.Microsecond) {
		t.Fatalf("round trip took %v, want >= 200µs", elapsed)
	}
	if l.Accepted != 1 {
		t.Fatalf("accepted = %d", l.Accepted)
	}
}

func TestDialNoListener(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{})
	sm.Spawn("client", func(p *sim.Proc) {
		if _, err := nw.Dial(p, "nowhere"); !errors.Is(err, ErrNoListener) {
			t.Errorf("err = %v, want ErrNoListener", err)
		}
	})
	sm.Run(sim.Time(sim.Second))
	if nw.NoListener != 1 {
		t.Fatalf("NoListener = %d", nw.NoListener)
	}
}

func TestDialRefusedWhenBacklogFull(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{AcceptBacklog: 2})
	l, _ := nw.Listen("db")
	refused := 0
	for i := 0; i < 4; i++ {
		sm.Spawn("client", func(p *sim.Proc) {
			// Nobody accepts, so dials beyond the backlog bound are refused.
			if _, err := nw.Dial(p, "db"); errors.Is(err, ErrRefused) {
				refused++
			}
		})
	}
	sm.Run(sim.Time(sim.Second))
	if refused != 2 || nw.Refused != 2 || l.Refused != 2 {
		t.Fatalf("refused = %d, nw.Refused = %d, l.Refused = %d", refused, nw.Refused, l.Refused)
	}
	if l.Depth() != 2 {
		t.Fatalf("backlog depth = %d", l.Depth())
	}
}

func TestListenerCloseWakesAcceptor(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{})
	l, _ := nw.Listen("db")
	var acceptErr error
	sm.Spawn("server", func(p *sim.Proc) {
		_, acceptErr = l.Accept(p)
	})
	sm.Spawn("closer", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		l.Close()
	})
	sm.Run(sim.Time(sim.Second))
	if !errors.Is(acceptErr, ErrListenerClosed) {
		t.Fatalf("accept err = %v, want ErrListenerClosed", acceptErr)
	}
	// The address is released on close.
	if _, err := nw.Listen("db"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestCloseWakesReceiverAfterBufferedFrames(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{})
	l, _ := nw.Listen("db")
	var frames [][]byte
	var finalErr error
	sm.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		for {
			f, err := c.Recv(p)
			if err != nil {
				finalErr = err
				return
			}
			frames = append(frames, f)
		}
	})
	sm.Spawn("client", func(p *sim.Proc) {
		c, _ := nw.Dial(p, "db")
		c.Send(p, []byte("a"))
		c.Send(p, []byte("b"))
		c.Close()
	})
	sm.Run(sim.Time(sim.Second))
	if len(frames) != 2 || !errors.Is(finalErr, ErrClosed) {
		t.Fatalf("frames = %d, err = %v", len(frames), finalErr)
	}
}

func TestFailDeliversTypedErrorToPeer(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{})
	l, _ := nw.Listen("db")
	errShed := errors.New("shed")
	var got error
	sm.Spawn("server", func(p *sim.Proc) {
		c, _ := l.Accept(p)
		c.Fail(errShed)
	})
	sm.Spawn("client", func(p *sim.Proc) {
		c, _ := nw.Dial(p, "db")
		_, got = c.Recv(p)
	})
	sm.Run(sim.Time(sim.Second))
	if !errors.Is(got, errShed) {
		t.Fatalf("recv err = %v, want the Fail error", got)
	}
}

// TestDeliverIsInstant pins the control-plane property the serving layer
// leans on: Deliver charges neither bandwidth nor latency, so it can be
// invoked from outside any proc (e.g. a stop hook) and the receiver sees
// the frame at the same simulated instant.
func TestDeliverIsInstant(t *testing.T) {
	sm := sim.New(1)
	nw := New(sm, Config{})
	l, _ := nw.Listen("db")
	var at sim.Time
	var server *Conn
	sm.Spawn("server", func(p *sim.Proc) {
		server, _ = l.Accept(p)
	})
	sm.Spawn("client", func(p *sim.Proc) {
		c, _ := nw.Dial(p, "db")
		f, err := c.Recv(p)
		if err != nil || string(f) != "bye" {
			t.Errorf("recv: %q %v", f, err)
		}
		at = p.Now()
	})
	sm.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		server.Deliver([]byte("bye")) // no link charge, no latency
	})
	sm.Run(sim.Time(sim.Second))
	if at != sim.Time(10*sim.Millisecond) {
		t.Fatalf("delivered at %v, want exactly 10ms", at)
	}
}
