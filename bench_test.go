// Benchmarks regenerating every table and figure in the paper's
// evaluation section. Each benchmark runs the corresponding harness
// experiment at bench density and reports the headline numbers as custom
// metrics; `go test -bench . -benchmem` therefore reproduces the full
// evaluation at reduced (but shape-preserving) fidelity. Run individual
// experiments at higher density with cmd/dbsense.
package repro_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/workload/tpch"
)

// benchOpts returns the scale-down settings used by all benchmarks.
func benchOpts() harness.Options {
	o := harness.DefaultOptions()
	o.Density = 80
	o.Warmup = sim.Second
	o.Measure = 2 * sim.Second
	o.Users = 24
	o.Streams = 3
	o.MinQueries = 8
	return o
}

// BenchmarkTable2 regenerates the database-size table.
func BenchmarkTable2(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		t := harness.Table2(opt)
		if len(t.Rows) != 10 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
	}
}

// BenchmarkFig2Cores sweeps core allocations for every workload class
// (Figure 2 a, d, g, j).
func BenchmarkFig2Cores(b *testing.B) {
	opt := benchOpts()
	steps := []int{2, 16, 32}
	for _, w := range []harness.Workload{harness.WTpch, harness.WTpce, harness.WAsdb, harness.WHtap} {
		w := w
		b.Run(string(w), func(b *testing.B) {
			sfs := harness.PaperSFs(w)
			use := []int{sfs[0], sfs[len(sfs)-1]}
			for i := 0; i < b.N; i++ {
				res := harness.Fig2Cores(w, use, steps, opt)
				for sf, c := range res.PerfBySF {
					lo, _ := c.At(2)
					hi, _ := c.At(16)
					full, _ := c.At(32)
					if lo > 0 {
						b.ReportMetric(hi/lo, fmt.Sprintf("sf%d_speedup_2to16c", sf))
					}
					if full > 0 {
						b.ReportMetric(hi/full, fmt.Sprintf("sf%d_16c_over_32c", sf))
					}
				}
			}
		})
	}
}

// BenchmarkFig2LLC sweeps CAT allocations (Figure 2 b/c, e/f, h/i, k/l).
func BenchmarkFig2LLC(b *testing.B) {
	opt := benchOpts()
	steps := []int{2, 10, 40}
	for _, w := range []harness.Workload{harness.WTpch, harness.WTpce, harness.WAsdb, harness.WHtap} {
		w := w
		b.Run(string(w), func(b *testing.B) {
			sfs := harness.PaperSFs(w)
			use := []int{sfs[len(sfs)/2]}
			for i := 0; i < b.N; i++ {
				res := harness.Fig2LLC(w, use, steps, opt)
				for sf, c := range res.PerfBySF {
					small, _ := c.At(2)
					full, _ := c.At(40)
					if small > 0 {
						b.ReportMetric(full/small, fmt.Sprintf("sf%d_speedup_2to40MB", sf))
					}
					m := res.MPKIBySF[sf]
					m2, _ := m.At(2)
					m40, _ := m.At(40)
					if m40 > 0 {
						b.ReportMetric(m2/m40, fmt.Sprintf("sf%d_mpki_ratio", sf))
					}
				}
			}
		})
	}
}

// BenchmarkTable3 measures the TPC-E wait-time ratios across SFs.
func BenchmarkTable3(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res := harness.Table3(800, 2400, opt)
		for _, r := range res.Ratios {
			b.ReportMetric(r.Value(), r.Label+"_ratio")
		}
		b.ReportMetric(res.SumLockLatchPage.Value(), "sum_ratio")
	}
}

// BenchmarkTable4 derives sufficient LLC capacities from LLC sweeps.
func BenchmarkTable4(b *testing.B) {
	opt := benchOpts()
	steps := []int{2, 8, 16, 40}
	for i := 0; i < b.N; i++ {
		var all []harness.Fig2LLCResult
		for _, w := range []harness.Workload{harness.WAsdb, harness.WTpch} {
			sfs := harness.PaperSFs(w)
			all = append(all, harness.Fig2LLC(w, []int{sfs[0]}, steps, opt))
		}
		t := harness.Table4(all)
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig3 measures average bandwidths under core- and cache-driven
// performance changes.
func BenchmarkFig3(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res := harness.Fig3(harness.WTpch, 100, opt)
		last := res.CoreDriven[len(res.CoreDriven)-1]
		b.ReportMetric(last.DRAMMBps, "tpch_dram_MBps_at_32c")
		b.ReportMetric(last.SSDReadMBps, "tpch_ssdread_MBps_at_32c")
	}
}

// BenchmarkFig4 collects bandwidth CDFs at full allocations.
func BenchmarkFig4(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res := harness.Fig4(harness.WTpch, 300, opt)
		b.ReportMetric(res.SSDRead.Percentile(90), "tpch300_ssdread_p90_MBps")
		b.ReportMetric(res.DRAM.Percentile(90), "tpch300_dram_p90_MBps")
		res2 := harness.Fig4(harness.WAsdb, 6000, opt)
		b.ReportMetric(res2.SSDWrite.Percentile(90), "asdb6000_ssdwrite_p90_MBps")
	}
}

// BenchmarkFig5 sweeps SSD read-bandwidth limits for TPC-H SF 300.
func BenchmarkFig5(b *testing.B) {
	opt := benchOpts()
	steps := []float64{100, 800, 2500}
	for i := 0; i < b.N; i++ {
		c := harness.Fig5(opt, steps)
		lo, _ := c.At(100)
		hi, _ := c.At(2500)
		if lo > 0 {
			b.ReportMetric(hi/lo, "qps_gain_100to2500MBps")
		}
		actual, linear, ok := c.AllocationForTarget(hi * 0.8)
		if ok && actual > 0 {
			b.ReportMetric(linear/actual, "linear_overprovision_x")
		}
	}
}

// BenchmarkFig5Write measures ASDB sensitivity to write-bandwidth limits.
func BenchmarkFig5Write(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		c := harness.Fig5Write(opt)
		at50, _ := c.At(50)
		at100, _ := c.At(100)
		full := c.Last().Y
		b.ReportMetric(at50/full, "tps_frac_at_50MBps")
		b.ReportMetric(at100/full, "tps_frac_at_100MBps")
	}
}

// BenchmarkFig6 measures per-query MAXDOP sensitivity at two SFs.
func BenchmarkFig6(b *testing.B) {
	opt := benchOpts()
	for _, sf := range []int{10, 300} {
		sf := sf
		b.Run(fmt.Sprintf("sf%d", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := harness.Fig6(sf, opt, []int{1, 8, 32})
				// Aggregate: how many queries gain >2x from dop 1 -> 32.
				sensitive := 0
				var q20 float64
				for q := 1; q <= tpch.NumQueries; q++ {
					s := res.Speedup(q, 1) // t(32)/t(1); < 0.5 means 32 is 2x faster
					if s > 0 && s < 0.5 {
						sensitive++
					}
					if q == 20 && s > 0 {
						q20 = 1 / s
					}
				}
				b.ReportMetric(float64(sensitive), "queries_gaining_2x")
				b.ReportMetric(q20, "q20_speedup_dop32_vs_1")
			}
		})
	}
}

// BenchmarkFig7 explains Q20 at both DOPs and checks the shapes.
func BenchmarkFig7(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		small := harness.Fig7(10, opt)
		big := harness.Fig7(300, opt)
		if small.SerialShape == "" || big.ParShape == "" {
			b.Fatal("missing plans")
		}
	}
}

// BenchmarkFig8 measures query-memory-grant sensitivity on TPC-H SF 100.
func BenchmarkFig8(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res := harness.Fig8(opt, []float64{0.25, 0.05, 0.02})
		degraded := 0
		var q18 float64
		for q := 1; q <= tpch.NumQueries; q++ {
			s := res.Speedup(q, 0.02)
			if s > 0 && s < 0.9 {
				degraded++
			}
			if q == 18 {
				q18 = s
			}
		}
		b.ReportMetric(float64(degraded), "queries_hurt_at_2pct")
		b.ReportMetric(q18, "q18_speedup_at_2pct")
	}
}

// BenchmarkReplication runs the commit-mode replication sweep and
// reports the per-mode commit acknowledgement latency. The metrics are
// simulated time (deterministic at a fixed seed), so the trajectory
// gates on genuine commit-path changes, not runner noise.
func BenchmarkReplication(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res := harness.Replication(1, opt, nil, []float64{200}, []int{1})
		if err := res.Err(); err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Mode == repl.ModeAsync {
				continue // async never waits; its ack latency is identically 0
			}
			b.ReportMetric(p.CommitAckMs, fmt.Sprintf("commit_%s_sim_ms", p.Mode))
		}
	}
}

// BenchmarkFailover crashes a replicated primary, promotes a standby,
// and reports the simulated RTO and point-in-time-restore time.
func BenchmarkFailover(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res := harness.Failover(1, opt, []repl.Mode{repl.ModeQuorum})
		if err := res.Err(); err != nil {
			b.Fatal(err)
		}
		c := res.Cells[0]
		b.ReportMetric(c.Failover.RTO.Seconds()*1e3, "rto_sim_ms")
		b.ReportMetric(c.PITR.Elapsed.Seconds()*1e3, "pitr_sim_ms")
	}
}

// BenchmarkServing drives the network serving front end with open-loop
// traffic at a fixed offered load past saturation and reports the
// served-tail latency and shed rate. Both are simulated-time metrics,
// so the trajectory gates on genuine admission-control or protocol
// changes, not runner noise.
func BenchmarkServing(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		pt := harness.ServeOnce(1000, opt, harness.Knobs{}, 32, false)
		if pt.Accepted == 0 {
			b.Fatal("no connections served")
		}
		b.ReportMetric(pt.P99Ms, "p99_sim_ms")
		b.ReportMetric(pt.ShedRate, "shed_rate")
		b.ReportMetric(pt.GoodputRPS, "goodput_rps")
	}
}

// BenchmarkChaos runs the marquee chaos cell — a serving-segment
// partition plus replication-link stall during the storm window, a
// mid-window primary crash, failover, and promotion — behind resilient
// clients, and reports the acked-commit safety headline: survival must
// stay exactly 1.0 (every client-acknowledged commit present after
// failover), with time-to-goodput-recovery and client retry volume as
// the sim-deterministic liveness trajectory.
func BenchmarkChaos(b *testing.B) {
	opt := benchOpts()
	spec := []harness.ChaosSpec{{Name: "split-burst+crash", Schedule: "split-burst", Crash: true, Storm: true}}
	for i := 0; i < b.N; i++ {
		res := harness.Chaos(1, opt, spec, 16)
		if err := res.Err(); err != nil {
			b.Fatal(err)
		}
		p := res.Points[0]
		if p.Acked == 0 {
			b.Fatal("chaos cell acked nothing")
		}
		survival := float64(p.Acked-p.LostAcks) / float64(p.Acked)
		b.ReportMetric(survival, "acked_commit_survival")
		b.ReportMetric(p.RecoveryMs, "time_to_goodput_sim_ms")
		b.ReportMetric(float64(p.Retries), "client_retries")
	}
}

// BenchmarkSelfProfile runs a TPC-H point with simulator self-profiling
// armed and reports each phase's host overhead as wall-ms per simulated
// second. Every metric name carries "wall", so benchjson records the
// trajectory without ever gating on it (the ratios are runner-dependent
// wall clock, unlike the sim-deterministic metrics above).
func BenchmarkSelfProfile(b *testing.B) {
	opt := benchOpts()
	opt.Parallel = 1
	for i := 0; i < b.N; i++ {
		before := sim.ProfSnapshot()
		sim.EnableProfiling()
		harness.RunTPCH(10, opt, harness.Knobs{})
		sim.DisableProfiling()
		after := sim.ProfSnapshot()
		var simNs int64
		if len(after) > 0 {
			simNs = after[0].SimNs - before[0].SimNs
		}
		if simNs <= 0 {
			b.Fatal("self-profiling covered no simulated time")
		}
		for j := range after {
			wallNs := after[j].WallNs - before[j].WallNs
			name := strings.ReplaceAll(after[j].Name, ".", "_")
			b.ReportMetric(float64(wallNs)/1e6/(float64(simNs)/1e9), name+"_wall_ms_per_sim_s")
		}
	}
}

// BenchmarkSweepParallelism runs the same 12-point core sweep serially
// and on a full worker pool; the time-per-op ratio between the two
// sub-benchmarks is the wall-clock speedup of the parallel executor
// (results are bit-identical either way — see harness.Sweep).
func BenchmarkSweepParallelism(b *testing.B) {
	steps := []int{1, 2, 4, 8, 16, 32}
	pars := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		pars = append(pars, n)
	}
	for _, par := range pars {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			opt := benchOpts()
			opt.Parallel = par
			for i := 0; i < b.N; i++ {
				res := harness.Fig2Cores(harness.WTpch, []int{10, 100}, steps, opt)
				if len(res.PerfBySF) != 2 {
					b.Fatal("missing curves")
				}
			}
		})
	}
}

// BenchmarkAblationSMT quantifies the SMT interference model's effect on
// the core-sweep shape (DESIGN.md ablation).
func BenchmarkAblationSMT(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res := harness.Fig2Cores(harness.WTpch, []int{10}, []int{16, 32}, opt)
		c := res.PerfBySF[10]
		at16, _ := c.At(16)
		at32, _ := c.At(32)
		b.ReportMetric(at16/at32, "ht_detriment_16c_over_32c")
	}
}

// BenchmarkAblationMetadata removes the shared engine-metadata working
// set, quantifying how much of the LLC sensitivity it carries.
func BenchmarkAblationMetadata(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		base := harness.Fig2LLC(harness.WAsdb, []int{2000}, []int{2, 40}, opt)
		c := base.PerfBySF[2000]
		lo, _ := c.At(2)
		hi, _ := c.At(40)
		b.ReportMetric(hi/lo, "asdb_llc_sensitivity_with_meta")
	}
}

// BenchmarkAblationCompression measures the columnstore's I/O advantage
// by comparing nominal sizes (the batch/compression ablation).
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := tpch.Build(tpch.Config{SF: 10, ActualLineitemPerSF: 100, Seed: 1})
		raw := float64(0)
		for _, t := range d.DB.Tables {
			raw += float64(t.NominalDataBytes())
		}
		b.ReportMetric(raw/float64(d.DB.DataBytes()), "row_over_columnstore_bytes")
	}
}
